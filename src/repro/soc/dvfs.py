"""Voltage/frequency curves and sustained operating points per TDP.

Table 1 of the paper describes the modelled processor: the CPU cores scale
from 0.8 GHz to 4 GHz, the graphics engines from 0.1 GHz to 1.2 GHz, and the
LLC scales with whichever compute domain drives it.  The System Agent and IO
domains run at fixed frequencies and voltages.

A modern power-management unit stores the voltage required for each frequency
as a firmware table; we model it as a piecewise-linear
:class:`VoltageFrequencyCurve` spanning the 0.55--1.1 V operational range the
paper quotes for client processors.

The *sustained* frequency a TDP supports (e.g. 0.9 GHz for the 4 W SPEC
CPU2006 evaluation of Sec. 7.1) is also stored as a table; the performance
model perturbs frequencies around these operating points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.domains import WorkloadType
from repro.util.errors import ModelDomainError
from repro.util.interpolate import LinearTable1D, clamp
from repro.util.validation import require_positive


@dataclass(frozen=True)
class VoltageFrequencyCurve:
    """Voltage required to sustain a given clock frequency.

    Attributes
    ----------
    min_frequency_ghz / max_frequency_ghz:
        The domain's frequency range.
    min_voltage_v / max_voltage_v:
        Voltage at the minimum and maximum frequency; intermediate points are
        interpolated linearly (a good approximation over the client range).
    """

    min_frequency_ghz: float
    max_frequency_ghz: float
    min_voltage_v: float
    max_voltage_v: float

    def __post_init__(self) -> None:
        require_positive(self.min_frequency_ghz, "min_frequency_ghz")
        require_positive(self.max_frequency_ghz, "max_frequency_ghz")
        require_positive(self.min_voltage_v, "min_voltage_v")
        require_positive(self.max_voltage_v, "max_voltage_v")
        if self.max_frequency_ghz <= self.min_frequency_ghz:
            raise ModelDomainError("max_frequency_ghz must exceed min_frequency_ghz")
        if self.max_voltage_v < self.min_voltage_v:
            raise ModelDomainError("max_voltage_v must be >= min_voltage_v")

    def voltage_for_frequency(self, frequency_ghz: float) -> float:
        """Voltage needed to run at ``frequency_ghz`` (clamped to the range)."""
        frequency_ghz = clamp(frequency_ghz, self.min_frequency_ghz, self.max_frequency_ghz)
        span = self.max_frequency_ghz - self.min_frequency_ghz
        fraction = (frequency_ghz - self.min_frequency_ghz) / span
        return self.min_voltage_v + fraction * (self.max_voltage_v - self.min_voltage_v)

    def frequency_for_voltage(self, voltage_v: float) -> float:
        """Highest frequency sustainable at ``voltage_v`` (clamped to the range)."""
        voltage_v = clamp(voltage_v, self.min_voltage_v, self.max_voltage_v)
        span = self.max_voltage_v - self.min_voltage_v
        if span == 0.0:
            return self.max_frequency_ghz
        fraction = (voltage_v - self.min_voltage_v) / span
        return self.min_frequency_ghz + fraction * (
            self.max_frequency_ghz - self.min_frequency_ghz
        )


#: CPU core voltage/frequency curve (0.8--4 GHz, 0.60--1.10 V).
CORE_VF_CURVE = VoltageFrequencyCurve(
    min_frequency_ghz=0.8,
    max_frequency_ghz=4.0,
    min_voltage_v=0.60,
    max_voltage_v=1.10,
)

#: Graphics voltage/frequency curve (0.1--1.2 GHz, 0.55--1.00 V).
GFX_VF_CURVE = VoltageFrequencyCurve(
    min_frequency_ghz=0.1,
    max_frequency_ghz=1.2,
    min_voltage_v=0.55,
    max_voltage_v=1.00,
)

#: Sustained CPU core frequency at each TDP (GHz).  The 4 W entry matches the
#: 0.9 GHz maximum allowed frequency of the paper's 4 W SPEC evaluation; the
#: high-TDP entries stay below the 4 GHz ceiling so that Turbo headroom exists
#: for a better PDN to convert spared power into frequency (Sec. 3.3).
_SUSTAINED_CORE_FREQUENCY_GHZ = LinearTable1D(
    (4.0, 8.0, 10.0, 18.0, 25.0, 36.0, 50.0),
    (0.9, 1.5, 1.8, 2.6, 2.95, 3.35, 3.70),
)

#: Sustained graphics frequency at each TDP (GHz); like the cores, the
#: high-TDP entries leave headroom below the 1.2 GHz ceiling.
_SUSTAINED_GFX_FREQUENCY_GHZ = LinearTable1D(
    (4.0, 8.0, 10.0, 18.0, 25.0, 36.0, 50.0),
    (0.30, 0.45, 0.55, 0.80, 0.92, 1.05, 1.12),
)


def sustained_core_frequency_ghz(tdp_w: float) -> float:
    """Sustained CPU core frequency at ``tdp_w`` (GHz)."""
    require_positive(tdp_w, "tdp_w")
    return _SUSTAINED_CORE_FREQUENCY_GHZ(tdp_w)


def sustained_gfx_frequency_ghz(tdp_w: float) -> float:
    """Sustained graphics frequency at ``tdp_w`` (GHz)."""
    require_positive(tdp_w, "tdp_w")
    return _SUSTAINED_GFX_FREQUENCY_GHZ(tdp_w)


def compute_voltage_for_tdp(tdp_w: float) -> float:
    """CPU core supply voltage at the sustained operating point of ``tdp_w``."""
    return CORE_VF_CURVE.voltage_for_frequency(sustained_core_frequency_ghz(tdp_w))


def gfx_voltage_for_tdp(tdp_w: float, workload_type: WorkloadType) -> float:
    """Graphics supply voltage at ``tdp_w`` for ``workload_type``.

    Graphics-intensive workloads run the graphics engines at their sustained
    frequency; other workloads keep them at the minimum voltage (or gated).
    """
    if workload_type is WorkloadType.GRAPHICS:
        return GFX_VF_CURVE.voltage_for_frequency(sustained_gfx_frequency_ghz(tdp_w))
    return GFX_VF_CURVE.min_voltage_v
