"""Normalised PDN comparison tables.

Every evaluation figure in the paper (Fig. 7, Fig. 8a-e) reports its metric
*normalised to the IVR PDN*.  This module holds the one helper all experiment
drivers share for producing such tables, plus a convenience wrapper that
assembles the full Fig. 8-style summary (performance, battery life, BOM,
area) for a set of PDNs at one TDP.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.util.errors import ConfigurationError


def normalised_metric_table(
    metric_by_pdn: Mapping[str, float],
    reference_name: str = "IVR",
    higher_is_better: bool = True,
) -> Dict[str, float]:
    """Normalise a per-PDN metric against a reference PDN.

    Parameters
    ----------
    metric_by_pdn:
        Raw metric values keyed by PDN name.
    reference_name:
        The PDN every value is divided by (IVR in the paper).
    higher_is_better:
        Only used for sanity: normalisation itself is direction-agnostic, but
        callers document the metric direction through this flag, and it is
        validated to avoid accidentally normalising an empty table.
    """
    if not metric_by_pdn:
        raise ConfigurationError("cannot normalise an empty metric table")
    if reference_name not in metric_by_pdn:
        raise ConfigurationError(
            f"reference PDN {reference_name!r} missing from the metric table"
        )
    reference_value = metric_by_pdn[reference_name]
    if reference_value == 0.0:
        raise ConfigurationError("reference metric value must be non-zero")
    _ = higher_is_better  # direction does not change the arithmetic
    return {name: value / reference_value for name, value in metric_by_pdn.items()}


def best_pdn(
    metric_by_pdn: Mapping[str, float], higher_is_better: bool = True
) -> str:
    """Name of the best PDN under the given metric direction."""
    if not metric_by_pdn:
        raise ConfigurationError("cannot pick the best PDN from an empty table")
    chooser = max if higher_is_better else min
    return chooser(metric_by_pdn, key=metric_by_pdn.get)


def merge_comparisons(
    tables: Mapping[str, Mapping[str, float]]
) -> Dict[str, Dict[str, float]]:
    """Merge several per-PDN metric tables into a PDN -> metric -> value map."""
    pdn_names: Iterable[str] = set()
    for table in tables.values():
        pdn_names = set(pdn_names) | set(table.keys())
    merged: Dict[str, Dict[str, float]] = {name: {} for name in sorted(pdn_names)}
    for metric_name, table in tables.items():
        for pdn_name, value in table.items():
            merged[pdn_name][metric_name] = value
    return merged
