"""The PDNspot analysis framework.

This package is the user-facing layer of the reproduction: it glues the PDN
models, the performance model, the cost models and the workload suites into
the multi-dimensional exploration tool the paper describes.

* :mod:`repro.analysis.pdnspot` -- the :class:`PdnSpot` facade: evaluate,
  compare and sweep PDNs across TDPs, application ratios, workloads and power
  states, through a keyed evaluation cache (:meth:`PdnSpot.run`,
  :meth:`PdnSpot.evaluate_batch`).
* :mod:`repro.analysis.study` -- the declarative :class:`Study` grid and its
  fluent :class:`StudyBuilder`.
* :mod:`repro.analysis.executor` -- pluggable execution backends
  (:class:`SerialExecutor`, :class:`ThreadExecutor`, :class:`ProcessExecutor`)
  that shard a study grid, evaluate chunks concurrently and merge worker
  results back into the :class:`PdnSpot` cache.
* :mod:`repro.analysis.resultset` -- the columnar :class:`ResultSet` container
  with filter/pivot/normalise helpers and JSON/CSV serialisation.
* :mod:`repro.analysis.sweep` -- tombstone of the removed legacy sweep
  helpers (importing one raises with its Study replacement spelled out).
* :mod:`repro.analysis.validation` -- the model-validation harness that mimics
  Sec. 4.3: a synthetic "measured" reference with parameter perturbations and
  measurement noise, against which the models' ETEE predictions are scored.
* :mod:`repro.analysis.comparison` -- normalised PDN comparison tables.
* :mod:`repro.analysis.reporting` -- plain-text table rendering used by the
  examples and benchmark harness.
"""

from repro.analysis.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.analysis.pdnspot import CacheInfo, PdnSpot
from repro.analysis.resultset import MISSING, ResultSet
from repro.analysis.study import Scenario, Study, StudyBuilder, evaluate_study
from repro.analysis.validation import ValidationHarness, ValidationRecord, ValidationSummary
from repro.analysis.comparison import normalised_metric_table
from repro.analysis.reporting import format_table
from repro.analysis.sensitivity import SensitivityAnalysis, SensitivityRecord

__all__ = [
    "PdnSpot",
    "CacheInfo",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "Study",
    "StudyBuilder",
    "Scenario",
    "ResultSet",
    "MISSING",
    "evaluate_study",
    "ValidationHarness",
    "ValidationRecord",
    "ValidationSummary",
    "normalised_metric_table",
    "format_table",
    "SensitivityAnalysis",
    "SensitivityRecord",
]


def __getattr__(name: str):
    # The removed sweep_* helpers were re-exported here; route the lookup to
    # the tombstone module so both import spellings raise the same guidance.
    from repro.analysis import sweep as _sweep

    if name in _sweep._REMOVED:
        return getattr(_sweep, name)  # raises ImportError with the mapping
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
