"""Parameter-sensitivity analysis.

PDNspot's purpose is multi-dimensional design-space exploration (Sec. 3): a
designer wants to know not only which PDN wins with today's Table-2
parameters, but how robust that conclusion is to the parameters the technology
team can still move -- tolerance bands, load-line impedances, the leakage
exponent, the LDO current efficiency.

:class:`SensitivityAnalysis` perturbs one named technology parameter at a time
by a relative amount, re-evaluates every PDN at a chosen operating point, and
reports the ETEE swing each PDN sees.  This powers the what-if sections of the
design-space-exploration example and provides the quantitative backing for the
"insensitive within the published ranges" claim the validation makes.

The analysis is built on the cached :class:`PdnSpot` engine: perturbed models
are built once per override set and the unperturbed baseline -- shared by
every parameter of a tornado sweep -- is evaluated exactly once per PDN
instead of once per (parameter, direction) pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.pdnspot import PdnSpot
from repro.pdn.base import OperatingConditions
from repro.pdn.registry import available_pdns
from repro.power.domains import WorkloadType
from repro.power.parameters import PdnTechnologyParameters, default_parameters
from repro.util.errors import ConfigurationError

#: Scalar technology parameters that can be perturbed by name.
PERTURBABLE_PARAMETERS: Sequence[str] = (
    "ivr_tolerance_band_v",
    "mbvr_tolerance_band_v",
    "ldo_tolerance_band_v",
    "ivr_input_loadline_ohm",
    "ldo_input_loadline_ohm",
    "leakage_exponent",
    "ldo_current_efficiency",
    "flexwatts_loadline_scale",
    "ivr_input_voltage_v",
)


@dataclass(frozen=True)
class SensitivityRecord:
    """ETEE swing of one PDN for one perturbed parameter."""

    pdn_name: str
    parameter: str
    relative_change: float
    baseline_etee: float
    perturbed_etee: float

    @property
    def etee_delta(self) -> float:
        """Absolute ETEE change caused by the perturbation."""
        return self.perturbed_etee - self.baseline_etee

    @property
    def sensitivity(self) -> float:
        """ETEE change per unit of relative parameter change (d ETEE / d x)."""
        if self.relative_change == 0.0:
            return 0.0
        return self.etee_delta / self.relative_change


class SensitivityAnalysis:
    """One-at-a-time parameter-sensitivity study over the PDN models."""

    def __init__(
        self,
        parameters: Optional[PdnTechnologyParameters] = None,
        pdn_names: Optional[Sequence[str]] = None,
    ):
        self._parameters = parameters if parameters is not None else default_parameters()
        self._pdn_names = list(pdn_names) if pdn_names is not None else available_pdns()
        if not self._pdn_names:
            raise ConfigurationError("a sensitivity analysis needs at least one PDN")
        # The shared cached engine; the baseline is the first PDN only because
        # PdnSpot requires one -- sensitivity never normalises to it.
        self._spot = PdnSpot(
            parameters=self._parameters,
            pdn_names=self._pdn_names,
            baseline_name=self._pdn_names[0],
        )

    @property
    def pdn_names(self) -> List[str]:
        """The PDN architectures included in the study."""
        return list(self._pdn_names)

    def _perturbed_value(self, parameter: str, relative_change: float) -> float:
        if parameter not in PERTURBABLE_PARAMETERS:
            raise ConfigurationError(
                f"unknown or non-scalar parameter {parameter!r}; "
                f"perturbable: {', '.join(PERTURBABLE_PARAMETERS)}"
            )
        current = getattr(self._parameters, parameter)
        perturbed = current * (1.0 + relative_change)
        # Fraction-valued parameters (efficiencies) stay physical.
        if parameter == "ldo_current_efficiency":
            perturbed = min(1.0, max(0.0, perturbed))
        return perturbed

    def perturb(
        self,
        parameter: str,
        relative_change: float,
        conditions: Optional[OperatingConditions] = None,
    ) -> List[SensitivityRecord]:
        """ETEE swing of every PDN when ``parameter`` moves by ``relative_change``.

        Parameters
        ----------
        parameter:
            Name of a scalar field of :class:`PdnTechnologyParameters`.
        relative_change:
            Fractional change applied to the parameter (e.g. ``0.1`` for +10 %).
        conditions:
            Operating point to evaluate at; defaults to the Fig. 5 point
            (18 W, AR = 56 %, CPU-intensive).
        """
        if conditions is None:
            conditions = OperatingConditions.for_active_workload(
                18.0, 0.56, WorkloadType.CPU_MULTI_THREAD
            )
        perturbed_value = self._perturbed_value(parameter, relative_change)
        overrides = ((parameter, perturbed_value),)
        records: List[SensitivityRecord] = []
        for name in self._pdn_names:
            baseline_etee = self._spot.evaluate(name, conditions).etee
            perturbed_etee = self._spot.evaluate(name, conditions, overrides).etee
            records.append(
                SensitivityRecord(
                    pdn_name=name,
                    parameter=parameter,
                    relative_change=relative_change,
                    baseline_etee=baseline_etee,
                    perturbed_etee=perturbed_etee,
                )
            )
        return records

    def tornado(
        self,
        relative_change: float = 0.1,
        parameters: Sequence[str] = PERTURBABLE_PARAMETERS,
        conditions: Optional[OperatingConditions] = None,
    ) -> Dict[str, Dict[str, float]]:
        """Tornado-style summary: parameter -> PDN -> absolute ETEE swing.

        The swing is the magnitude of the ETEE change for a symmetric
        ``+/- relative_change`` perturbation (the larger of the two sides).
        """
        summary: Dict[str, Dict[str, float]] = {}
        for parameter in parameters:
            up = {r.pdn_name: abs(r.etee_delta) for r in self.perturb(parameter, relative_change, conditions)}
            down = {r.pdn_name: abs(r.etee_delta) for r in self.perturb(parameter, -relative_change, conditions)}
            summary[parameter] = {
                name: max(up[name], down[name]) for name in up
            }
        return summary

    def most_sensitive_parameter(
        self, pdn_name: str, relative_change: float = 0.1
    ) -> str:
        """The parameter whose perturbation moves ``pdn_name``'s ETEE the most."""
        summary = self.tornado(relative_change)
        return max(summary, key=lambda parameter: summary[parameter].get(pdn_name, 0.0))
