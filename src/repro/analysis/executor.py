"""Pluggable execution backends for study grids and evaluation batches.

Every grid-shaped workload of the library reduces to one shape: an ordered
list of *evaluation units* ``(pdn_name, conditions, overrides)`` evaluated by
an engine implementing the :class:`EvaluationEngine` protocol --
:class:`~repro.analysis.pdnspot.PdnSpot` for analytic operating points
(``conditions`` is an :class:`~repro.pdn.base.OperatingConditions`) and
:class:`~repro.sim.study.SimEngine` for trace-driven simulations
(``conditions`` is a picklable :class:`~repro.sim.study.SimPoint` scenario
reference).  An :class:`Executor` turns that list into evaluations:

1. units already memoised by the engine's cache are served directly (and
   counted as hits, exactly as a serial run would count them);
2. the remaining units are **deduplicated** -- only the first occurrence of
   each distinct cache key is computed -- and sharded into deterministic
   contiguous chunks (:func:`shard`);
3. the chunks are evaluated by the backend (in-process, a thread pool, or a
   process pool with picklable work units), in whatever order they complete;
4. every computed evaluation is **merged back** into the engine's shared
   memo cache (counted as misses), duplicate units are then resolved from
   the freshly warmed cache (counted as hits), and the results are
   reassembled in canonical unit order.

The accounting therefore matches a serial run exactly -- ``cache_info()``
after a parallel cold run reports the same hit/miss totals -- and the
returned list is ordered by the input units regardless of chunk completion
order.

Backends
--------
:class:`SerialExecutor`
    Evaluates chunks in order on the calling thread.  The default engine path
    (``executor=None``) is equivalent but skips the sharding machinery.
:class:`ThreadExecutor`
    A :class:`concurrent.futures.ThreadPoolExecutor` per call.  The PDN
    models are pure Python, so the GIL serialises the actual math; threads
    mainly help when evaluations are interleaved with other blocking work.
:class:`ProcessExecutor`
    A :class:`concurrent.futures.ProcessPoolExecutor` per call.  Work units
    are picklable ``(slot, pdn_name, conditions, overrides)`` tuples; each
    worker process rebuilds the evaluation engine once from a
    :class:`WorkerConfig` recipe and streams evaluations back.  This is the
    backend that actually parallelises the CPU-bound grid math.

Example
-------
>>> from repro import PdnSpot, Study
>>> spot = PdnSpot()
>>> study = Study.over_tdps([4.0, 18.0, 50.0])
>>> serial = spot.run(study)
>>> parallel = spot.run(study, executor="thread", jobs=2)
>>> serial == parallel
True
"""

from __future__ import annotations

import asyncio
import copy
import os
from abc import ABC, abstractmethod
from concurrent import futures
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    ClassVar,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.study import OverrideKey
from repro.obs import trace as obs_trace
from repro.obs.metrics import METRICS
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pdnspot imports us)
    from repro.power.parameters import PdnTechnologyParameters

#: The point an evaluation unit is evaluated at.  Opaque to the executor
#: machinery: it only needs to be hashable (cache keys) and -- for the
#: process backend -- picklable.  :class:`~repro.pdn.base.OperatingConditions`
#: for the analytic engine, :class:`~repro.sim.study.SimPoint` for the
#: simulation engine.
EvalPoint = object

#: What an engine produces for one unit.  ``PdnEvaluation`` for the analytic
#: engine, ``SimulationResult`` for the simulation engine.
EvalResult = object

#: One evaluation unit: which PDN, at which point, under which
#: technology-parameter overrides.
EvalUnit = Tuple[str, EvalPoint, OverrideKey]

#: A dispatchable task: an evaluation unit tagged with its result slot.
Task = Tuple[int, str, EvalPoint, OverrideKey]

#: A completed chunk: ``(slot, result)`` pairs, in any order.
ChunkResult = List[Tuple[int, EvalResult]]

#: What a process-pool worker ships back per chunk: the result pairs,
#: whether the columnar path evaluated them, and the worker's drained
#: trace-span batch (empty when tracing is disabled).
WorkerChunkPayload = Tuple[ChunkResult, bool, List["obs_trace.SpanRecord"]]

# Instruments bound once at import time (hot paths never do a registry
# lookup).  Cache-tier counters tick on the parent side of any fork --
# `TwoTierCacheMixin` only ever runs in the dispatching process.
_MEMORY_HITS = METRICS.counter("cache.memory.hits")
_DISK_HITS = METRICS.counter("cache.disk.hits")
_LOOKUP_MISSES = METRICS.counter("cache.lookup.misses")
_CACHE_INSTALLS = METRICS.counter("cache.installs")
_CHUNKS = METRICS.counter("executor.chunks")
_COLUMNAR_CHUNKS = METRICS.counter("executor.columnar.chunks")
_COLUMNAR_UNITS = METRICS.counter("executor.columnar.units")
_SCALAR_UNITS = METRICS.counter("executor.scalar.units")


class WorkerRecipe(Protocol):
    """A picklable recipe for rebuilding an engine inside a worker process."""

    def build_engine(self) -> "EvaluationEngine":
        """Build the worker-local (uncached) engine."""
        ...  # pragma: no cover - protocol


class EvaluationEngine(Protocol):
    """What an engine must provide to dispatch through an :class:`Executor`.

    :class:`~repro.analysis.pdnspot.PdnSpot` and
    :class:`~repro.sim.study.SimEngine` both implement this surface; the
    executor machinery never looks inside the points or results it moves
    around, so any engine whose evaluations are pure functions of
    ``(pdn name, point, overrides)`` can ride the same backends.
    """

    @property
    def cache_enabled(self) -> bool:
        """Whether the engine memoises evaluations."""
        ...  # pragma: no cover - protocol

    def cache_key(
        self, pdn_name: str, point: EvalPoint, overrides: OverrideKey
    ) -> Tuple[object, ...]:
        """The memo-cache key of one evaluation unit."""
        ...  # pragma: no cover - protocol

    def cache_lookup(self, key: Tuple[object, ...]) -> Optional[EvalResult]:
        """A caller-owned copy of a cached result, or ``None`` (hit-counted)."""
        ...  # pragma: no cover - protocol

    def cache_install(self, key: Tuple[object, ...], result: EvalResult) -> EvalResult:
        """Merge one computed result into the cache (miss-counted)."""
        ...  # pragma: no cover - protocol

    def evaluate_uncached(
        self, pdn_name: str, point: EvalPoint, overrides: OverrideKey
    ) -> EvalResult:
        """Compute one unit without touching the memo cache.

        The single-unit compute seam (the reference oracle): every dispatched
        unit that cannot ride :meth:`evaluate_columns` lands here.
        """
        ...  # pragma: no cover - protocol

    @property
    def columnar_enabled(self) -> bool:
        """Whether :meth:`evaluate_columns` may accept batches.

        Executors consult this *before* sharding: a columnar-capable engine
        gets its tasks grouped into whole column blocks (one ``(pdn,
        overrides)`` run of units per stretch) and larger minimum chunk
        sizes, because a vectorized pass amortises per-batch overhead that a
        per-point engine does not have.
        """
        ...  # pragma: no cover - protocol

    def evaluate_columns(
        self, units: Sequence[EvalUnit]
    ) -> Optional[List[EvalResult]]:
        """Vectorized batch evaluation, or ``None`` to decline the batch.

        The capability half of the columnar negotiation: an engine that can
        evaluate ``units`` as column arrays returns the results in unit
        order, bit-identical to calling :meth:`evaluate_uncached` per unit
        (the per-point path is the reference oracle; the equivalence suite
        gates the two).  Returning ``None`` -- always, for engines without a
        vectorized core (the simulation engine), or per batch, when a unit
        resists columnarisation (patched models, out-of-domain points) --
        routes the whole batch through the per-point seam instead.
        """
        ...  # pragma: no cover - protocol

    def prime_for_execution(self, units: Iterable[EvalUnit]) -> None:
        """Build lazily initialised shared state before workers run."""
        ...  # pragma: no cover - protocol

    def worker_config(self) -> WorkerRecipe:
        """The picklable recipe process-pool workers rebuild the engine from."""
        ...  # pragma: no cover - protocol


class TwoTierCacheMixin:
    """Shared memory-then-disk cache fall-through for evaluation engines.

    Implements the :meth:`cache_lookup` / :meth:`cache_install` half of the
    :class:`EvaluationEngine` protocol once, for every engine that keeps a
    locked in-memory memo dict in front of an optional
    :class:`~repro.cache.DiskCache`.  The host class provides the state --
    ``_cache``, ``_cache_lock``, ``_cache_hits``, ``_cache_misses``,
    ``_disk_cache`` -- plus two hooks:

    ``_copy_cached(value)``
        A caller-owned copy of a cached payload (cached masters are shared).
    ``_payload_type``
        The payload class disk entries must be to count as hits (guards
        against a foreign entry landing at an engine's address).

    Engines whose on-disk address differs from the memo key (the simulation
    engine's trace digest) additionally override :meth:`_disk_key`.
    """

    #: Disk payloads of any other type are treated as misses.
    _payload_type: type = object

    def _disk_key(self, key: Tuple[object, ...]) -> Tuple[object, ...]:
        """The on-disk address of one unit (defaults to the memo key)."""
        return key

    def _copy_cached(self, value: EvalResult) -> EvalResult:
        """A caller-owned copy of a cached payload (host engines override)."""
        raise NotImplementedError  # pragma: no cover - host engines override

    def cache_lookup(self, key: Tuple[object, ...]) -> Optional[EvalResult]:
        """A caller-owned copy of a cached result, or ``None`` (hit-counted).

        A memory miss falls through to the attached
        :class:`~repro.cache.DiskCache` (when there is one); a disk hit is
        promoted into the memory cache so later lookups skip the
        filesystem, and both tiers' hits are counted identically.
        """
        with self._cache_lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache_hits += 1
                _MEMORY_HITS.inc()
                return self._copy_cached(cached)
        if self._disk_cache is None:
            _LOOKUP_MISSES.inc()
            return None
        disk_key = self._disk_key(key)
        payload = self._disk_cache.get(disk_key)
        if payload is None:
            _LOOKUP_MISSES.inc()
            return None
        if not isinstance(payload, self._payload_type):
            # Structurally valid entry, wrong payload class (e.g. written by
            # a code version that changed the payload type without bumping
            # the format version): heal it like corruption, loudly.
            self._disk_cache.discard(
                disk_key,
                f"payload is {type(payload).__name__}, "
                f"expected {self._payload_type.__name__}",
            )
            _LOOKUP_MISSES.inc()
            return None
        with self._cache_lock:
            master = self._cache.setdefault(key, payload)
            self._cache_hits += 1
            _DISK_HITS.inc()
            return self._copy_cached(master)

    def cache_install(
        self, key: Tuple[object, ...], result: EvalResult
    ) -> EvalResult:
        """Merge one computed result into the cache (counted as a miss).

        This is the merge-back half of parallel execution: worker-computed
        results become shared cache masters and the caller gets the same
        caller-owned copy a serial miss would have produced.  With a disk
        store attached the result is also written through, so later
        processes start warm.
        """
        with self._cache_lock:
            self._cache_misses += 1
            self._cache[key] = result
            copy = self._copy_cached(result)
        _CACHE_INSTALLS.inc()
        if self._disk_cache is not None:
            self._disk_cache.put(self._disk_key(key), result)
        return copy


def default_jobs() -> int:
    """The default worker count: the machine's CPU count (at least one)."""
    return os.cpu_count() or 1


def shard(items: Sequence[object], shards: int) -> List[List[object]]:
    """Split ``items`` into at most ``shards`` deterministic contiguous chunks.

    Chunk sizes differ by at most one and the concatenation of the chunks is
    the input sequence, so the sharding is reproducible for a given
    ``(items, shards)`` pair -- completion order may vary, assignment never
    does.  Empty chunks are never produced.
    """
    if shards < 1:
        raise ConfigurationError(f"shard count must be positive, got {shards}")
    count = min(shards, len(items))
    if count == 0:
        return []
    base, extra = divmod(len(items), count)
    chunks: List[List[object]] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        chunks.append(list(items[start : start + size]))
        start += size
    return chunks


@dataclass(frozen=True)
class WorkerConfig:
    """A picklable recipe for rebuilding the analytic engine in a worker.

    Process-pool workers cannot share the parent's
    :class:`~repro.analysis.pdnspot.PdnSpot`; they receive this config
    through the pool initializer and build their own (uncached -- chunks are
    already deduplicated) engine once per process.  Other engines provide
    their own :class:`WorkerRecipe` (e.g.
    :class:`repro.sim.study.SimWorkerConfig`).
    """

    parameters: "PdnTechnologyParameters"
    pdn_names: Tuple[str, ...]
    baseline_name: str
    #: Whether the rebuilt engine keeps the vectorized columnar path enabled
    #: (mirrors the parent engine's setting, so worker shards take the same
    #: fast path the parent would have).
    columnar: bool = True

    def build_engine(self) -> "EvaluationEngine":
        """Build the worker-local evaluation engine."""
        from repro.analysis.pdnspot import PdnSpot

        return PdnSpot(
            parameters=self.parameters,
            pdn_names=list(self.pdn_names),
            baseline_name=self.baseline_name,
            enable_cache=False,
            columnar=self.columnar,
        )

    # Backwards-compatible spelling from when the recipe was PdnSpot-only.
    build_spot = build_engine


# Worker-process state, set once by :func:`_init_worker`.
_WORKER_ENGINE: Optional["EvaluationEngine"] = None


def _init_worker(config: WorkerRecipe, tracing: bool = False) -> None:
    """Process-pool initializer: build the worker-local engine once.

    With ``tracing`` set (the parent had a tracer installed at dispatch
    time) the worker installs its own :class:`~repro.obs.trace.Tracer`;
    its spans are drained per chunk and shipped back in the
    :data:`WorkerChunkPayload`, so one exported trace covers the fork
    boundary with correct worker pids.
    """
    global _WORKER_ENGINE
    _WORKER_ENGINE = config.build_engine()
    if tracing:
        obs_trace.install_tracer()


def _evaluate_chunk(chunk: List[Task]) -> WorkerChunkPayload:
    """Evaluate one task chunk in a worker process.

    Returns the ``(slot, result)`` pairs together with the columnar flag
    (counted by the *parent*, whose metrics registry survives the pool)
    and the worker tracer's drained span batch.
    """
    if _WORKER_ENGINE is None:  # pragma: no cover - initializer always runs first
        raise ConfigurationError("worker process was not initialised")
    with obs_trace.span("executor.chunk", category="executor",
                        units=len(chunk)) as active:
        pairs, used_columnar = _compute_chunk(_WORKER_ENGINE, chunk)
        active.set("columnar", used_columnar)
    tracer = obs_trace.active_tracer()
    spans = tracer.drain() if tracer is not None else []
    return pairs, used_columnar, spans


class Executor(ABC):
    """Base class of the pluggable execution backends.

    Parameters
    ----------
    jobs:
        Worker count; defaults to :func:`default_jobs`.  The unit list is
        sharded into at most this many chunks.
    """

    #: Registry name of the backend (``serial``/``thread``/``process``).
    name: ClassVar[str] = ""

    #: Whether chunks evaluate against the caller's own PDN models.  True for
    #: the in-process backends (serial/thread), whose workers need the
    #: caller's lazily built state primed first; process workers rebuild
    #: their own engines, so parent-side priming would be wasted work.
    uses_parent_models: ClassVar[bool] = True

    def __init__(self, jobs: Optional[int] = None):
        if jobs is not None and jobs < 1:
            raise ConfigurationError(f"executor jobs must be positive, got {jobs}")
        self._jobs = jobs

    @property
    def jobs(self) -> int:
        """The effective worker count."""
        return self._jobs if self._jobs is not None else default_jobs()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(jobs={self.jobs})"

    # ------------------------------------------------------------------ #
    # The shard / evaluate / merge / reassemble driver
    # ------------------------------------------------------------------ #
    def evaluate_units(
        self, engine: EvaluationEngine, units: Iterable[EvalUnit]
    ) -> List[EvalResult]:
        """Evaluate ``units`` through this backend, in canonical unit order.

        With the engine cache enabled, already-cached units are served
        immediately, distinct uncached units are computed exactly once across
        all workers, and every computed evaluation is merged back into the
        shared cache before duplicates are resolved from it.  With the cache
        disabled every unit is dispatched as-is (the seed-equivalent cost
        model the benchmarks rely on).
        """
        unit_list = list(units)
        if not unit_list:
            return []
        results: List[Optional[EvalResult]] = [None] * len(unit_list)
        if engine.cache_enabled:
            primaries: Dict[Tuple[object, ...], int] = {}
            duplicates: List[Tuple[int, Tuple[object, ...]]] = []
            with obs_trace.span("executor.dedupe", category="executor",
                                backend=self.name) as dedupe_span:
                for slot, (name, point, overrides) in enumerate(unit_list):
                    key = engine.cache_key(name, point, overrides)
                    if key in primaries:
                        duplicates.append((slot, key))
                        continue
                    cached = engine.cache_lookup(key)
                    if cached is not None:
                        results[slot] = cached
                    else:
                        primaries[key] = slot
                dedupe_span.set("units", len(unit_list))
                dedupe_span.set("dispatched", len(primaries))
                dedupe_span.set("duplicates", len(duplicates))
            tasks: List[Task] = [(slot, *unit_list[slot]) for slot in primaries.values()]
            chunks = shard(*self._plan_shards(engine, tasks))
            if self.uses_parent_models or len(chunks) == 1:
                # Only the dispatched units need their models primed (a fully
                # warm batch never reaches the workers); the single-chunk case
                # covers the process backend's in-process fallback.
                engine.prime_for_execution(
                    unit_list[slot] for slot in primaries.values()
                )
            with obs_trace.span("executor.dispatch", category="executor",
                                backend=self.name, jobs=self.jobs,
                                chunks=len(chunks)):
                for chunk_result in self._run_chunks(engine, chunks):
                    with obs_trace.span("executor.merge_back",
                                        category="executor",
                                        units=len(chunk_result)):
                        for slot, evaluation in chunk_result:
                            name, point, overrides = unit_list[slot]
                            key = engine.cache_key(name, point, overrides)
                            results[slot] = engine.cache_install(key, evaluation)
            with obs_trace.span("executor.reassemble", category="executor",
                                duplicates=len(duplicates)):
                for slot, key in duplicates:
                    resolved = engine.cache_lookup(key)
                    if resolved is None:  # pragma: no cover - install precedes this
                        raise ConfigurationError(
                            "cache merge-back lost an evaluation; this is a bug"
                        )
                    results[slot] = resolved
        else:
            tasks = [(slot, *unit) for slot, unit in enumerate(unit_list)]
            chunks = shard(*self._plan_shards(engine, tasks))
            if self.uses_parent_models or len(chunks) == 1:
                engine.prime_for_execution(unit_list)
            with obs_trace.span("executor.dispatch", category="executor",
                                backend=self.name, jobs=self.jobs,
                                chunks=len(chunks)):
                for chunk_result in self._run_chunks(engine, chunks):
                    for slot, evaluation in chunk_result:
                        results[slot] = evaluation
        missing = [slot for slot, result in enumerate(results) if result is None]
        if missing:  # pragma: no cover - defensive: a backend dropped work
            raise ConfigurationError(
                f"executor {self.name!r} returned no result for {len(missing)} units"
            )
        return results

    def _plan_shards(
        self, engine: EvaluationEngine, tasks: List[Task]
    ) -> Tuple[List[Task], int]:
        """The (task order, shard count) this backend dispatches with.

        For per-point engines this is the historical plan: input order,
        sharded into up to ``jobs`` contiguous chunks.  For columnar-capable
        engines the tasks are first grouped by ``(pdn name, overrides)`` --
        stable within each group, groups in first-appearance order -- so
        contiguous chunks become whole column blocks, and the shard count is
        capped so no chunk drops below :data:`MIN_COLUMNAR_CHUNK` units
        (a vectorized pass over a sliver is all fixed overhead).  Both plans
        are deterministic functions of ``(engine capability, tasks, jobs)``.
        """
        if not getattr(engine, "columnar_enabled", False):
            return tasks, self.jobs
        groups: Dict[Tuple[str, OverrideKey], List[Task]] = {}
        for task in tasks:
            groups.setdefault((task[1], task[3]), []).append(task)
        ordered = [task for group in groups.values() for task in group]
        shards = min(self.jobs, max(1, len(ordered) // MIN_COLUMNAR_CHUNK))
        return ordered, shards

    @abstractmethod
    def _run_chunks(
        self, engine: EvaluationEngine, chunks: List[List[Task]]
    ) -> Iterator[ChunkResult]:
        """Evaluate every chunk, yielding completed chunks in any order."""


#: Minimum units per chunk when the engine evaluates columns: below this a
#: chunk's vectorized pass is dominated by its fixed per-batch overhead, so
#: the planner prefers fewer, fatter shards (worker start-up costs more than
#: the lost overlap).
MIN_COLUMNAR_CHUNK = 128


def _evaluate_chunk_in_process(
    engine: EvaluationEngine, chunk: List[Task]
) -> ChunkResult:
    """Evaluate one task chunk against the caller's own engine (no cache I/O).

    This is where the columnar negotiation happens, once per chunk: a
    columnar-capable engine gets the whole chunk as one batch and returns
    bit-identical results in one vectorized pass per ``(pdn, overrides)``
    column block; if it declines (no capability, patched models, points that
    resist columnarisation) every unit runs through the per-point seam.
    """
    with obs_trace.span("executor.chunk", category="executor",
                        units=len(chunk)) as active:
        pairs, used_columnar = _compute_chunk(engine, chunk)
        active.set("columnar", used_columnar)
    _note_chunk(len(chunk), used_columnar)
    return pairs


def _compute_chunk(
    engine: EvaluationEngine, chunk: List[Task]
) -> Tuple[ChunkResult, bool]:
    """Run the columnar negotiation for one chunk.

    Returns the ``(slot, result)`` pairs plus whether the engine's
    vectorized columnar path produced them (``False`` means every unit
    went through the per-point seam).
    """
    evaluate_columns = getattr(engine, "evaluate_columns", None)
    if evaluate_columns is not None:
        evaluations = evaluate_columns([task[1:] for task in chunk])
        if evaluations is not None:
            return (
                [(task[0], result) for task, result in zip(chunk, evaluations)],
                True,
            )
    return (
        [
            (slot, engine.evaluate_uncached(name, point, overrides))
            for slot, name, point, overrides in chunk
        ],
        False,
    )


def _note_chunk(units: int, used_columnar: bool) -> None:
    """Count one evaluated chunk in the dispatching process's registry."""
    _CHUNKS.inc()
    if used_columnar:
        _COLUMNAR_CHUNKS.inc()
        _COLUMNAR_UNITS.inc(units)
    else:
        _SCALAR_UNITS.inc(units)


class SerialExecutor(Executor):
    """Evaluate chunks sequentially on the calling thread.

    Functionally identical to the engine's default path; useful as the
    explicit baseline the parallel backends are checked against, and as the
    ``--executor serial`` CLI spelling.
    """

    name = "serial"

    def _run_chunks(
        self, engine: EvaluationEngine, chunks: List[List[Task]]
    ) -> Iterator[ChunkResult]:
        for chunk in chunks:
            yield _evaluate_chunk_in_process(engine, chunk)


class ThreadExecutor(Executor):
    """Evaluate chunks on a :class:`~concurrent.futures.ThreadPoolExecutor`.

    Workers share the caller's PDN models (read-only after
    :meth:`PdnSpot.prime_for_execution`); the evaluations themselves hold the
    GIL, so wall-clock gains are modest for this pure-Python workload -- see
    :class:`ProcessExecutor` for actual CPU parallelism.
    """

    name = "thread"

    def _run_chunks(
        self, engine: EvaluationEngine, chunks: List[List[Task]]
    ) -> Iterator[ChunkResult]:
        if len(chunks) <= 1:
            for chunk in chunks:
                yield _evaluate_chunk_in_process(engine, chunk)
            return
        with futures.ThreadPoolExecutor(max_workers=len(chunks)) as pool:
            submitted = [
                pool.submit(_evaluate_chunk_in_process, engine, chunk)
                for chunk in chunks
            ]
            for future in futures.as_completed(submitted):
                yield future.result()


class ProcessExecutor(Executor):
    """Evaluate chunks on a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Each worker process rebuilds the evaluation engine once from the
    caller's :class:`WorkerConfig` (pool initializer), then evaluates
    picklable task chunks; evaluations stream back to the parent, which owns
    the cache merge.  Worker start-up (interpreter fork/spawn plus the
    FlexWatts predictor calibration) costs tens of milliseconds per worker,
    so this backend pays off on grids whose serial cost dwarfs that.
    """

    name = "process"
    uses_parent_models = False

    def _run_chunks(
        self, engine: EvaluationEngine, chunks: List[List[Task]]
    ) -> Iterator[ChunkResult]:
        if len(chunks) <= 1:
            # One chunk cannot overlap with anything; skip the pool start-up.
            for chunk in chunks:
                yield _evaluate_chunk_in_process(engine, chunk)
            return
        config = engine.worker_config()
        tracing = obs_trace.tracing_enabled()
        with futures.ProcessPoolExecutor(
            max_workers=len(chunks),
            initializer=_init_worker,
            initargs=(config, tracing),
        ) as pool:
            submitted = [pool.submit(_evaluate_chunk, chunk) for chunk in chunks]
            for future in futures.as_completed(submitted):
                pairs, used_columnar, spans = future.result()
                _note_chunk(len(pairs), used_columnar)
                tracer = obs_trace.active_tracer()
                if spans and tracer is not None:
                    tracer.absorb(spans)
                yield pairs


#: Registry of the built-in backends, keyed by their CLI/``make_executor`` name.
EXECUTORS: Dict[str, Callable[..., Executor]] = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
}

#: What an ``executor=`` argument may be: a backend instance, a registry name,
#: or ``None`` (engine default).
ExecutorLike = Union[Executor, str, None]


def make_executor(
    executor: ExecutorLike = None, jobs: Optional[int] = None
) -> Optional[Executor]:
    """Resolve an ``executor=`` argument into a backend instance.

    ``None`` with no ``jobs`` (or ``jobs=1``) keeps the engine's default
    serial path; ``None`` with ``jobs > 1`` selects :class:`ProcessExecutor`
    (the backend that parallelises this CPU-bound workload); a string is
    looked up in :data:`EXECUTORS`; an :class:`Executor` instance is passed
    through unchanged (``jobs`` must then be ``None`` or match).
    """
    if jobs is not None and jobs < 1:
        raise ConfigurationError(f"jobs must be positive, got {jobs}")
    if executor is None:
        if jobs is None or jobs == 1:
            return None
        return ProcessExecutor(jobs=jobs)
    if isinstance(executor, Executor):
        if jobs is None:
            return executor
        if executor._jobs is None:
            # The instance never chose a worker count; adopt the explicit one
            # rather than comparing against the machine-dependent default.  A
            # copy (not reconstruction) keeps subclass state intact.
            adopted = copy.copy(executor)
            adopted._jobs = jobs
            return adopted
        if jobs != executor._jobs:
            raise ConfigurationError(
                f"jobs={jobs} conflicts with {executor!r}; configure the "
                "executor's jobs directly"
            )
        return executor
    if isinstance(executor, str):
        try:
            factory = EXECUTORS[executor]
        except KeyError:
            raise ConfigurationError(
                f"unknown executor {executor!r}; choose from: "
                f"{', '.join(sorted(EXECUTORS))}"
            ) from None
        return factory(jobs=jobs)
    raise ConfigurationError(
        f"executor must be None, a name, or an Executor instance, "
        f"got {type(executor).__name__}"
    )


async def evaluate_units_async(
    engine: EvaluationEngine,
    units: Iterable[EvalUnit],
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
) -> List[EvalResult]:
    """Evaluate ``units`` without blocking the running event loop.

    The awaitable dispatch seam the evaluation service is built on: the
    blocking :meth:`Executor.evaluate_units` drive (cache lookup, dedupe,
    shard, evaluate, merge-back, canonical reassembly) runs on the loop's
    default thread-pool executor while the caller's coroutine is suspended.
    Results -- and every cache side effect -- are exactly those of the
    synchronous call.

    Parameters
    ----------
    engine:
        Any :class:`EvaluationEngine` (the analytic or the simulation
        engine, or a test stub).
    units:
        The ``(pdn name, point, overrides)`` units, evaluated in order.
    executor, jobs:
        The backend the dispatched batch itself runs on, resolved by
        :func:`make_executor`; the default is a :class:`SerialExecutor`
        on the seam thread (identical accounting to the engine's serial
        path).
    """
    backend = make_executor(executor, jobs=jobs)
    if backend is None:
        backend = SerialExecutor(jobs=1)
    unit_list = list(units)
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(
        None, backend.evaluate_units, engine, unit_list
    )


def parallel_requested(executor: ExecutorLike = None, jobs: Optional[int] = None) -> bool:
    """Whether ``executor`` / ``jobs`` select a parallel backend.

    The one gate the figure drivers use to decide between the seed-identical
    serial path and a parallel prewarm; it validates the arguments exactly
    like :func:`make_executor` (so an invalid ``jobs`` raises instead of
    silently falling back to serial).
    """
    return make_executor(executor, jobs=jobs) is not None
