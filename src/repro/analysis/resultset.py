"""The columnar :class:`ResultSet` container.

Every evaluation surface of the library -- :meth:`PdnSpot.run`, the sweep
shims, the experiment drivers and the CLI ``sweep``/``export`` commands --
produces a :class:`ResultSet`: a small, dependency-free columnar table with
typed accessors, relational-style helpers (:meth:`ResultSet.filter`,
:meth:`ResultSet.pivot`, :meth:`ResultSet.normalize_to`) and loss-free
serialisation (:meth:`ResultSet.to_json` / :meth:`ResultSet.from_json`,
:meth:`ResultSet.to_csv`).

A result set is rectangular but *ragged-schema*: rows produced by different
scenario kinds may populate different columns (an active-workload row has an
``application_ratio``, a package-C-state row has a ``power_state``).  Absent
cells hold the :data:`MISSING` sentinel and are dropped again by
:meth:`ResultSet.to_records`, so records round-trip exactly through the
columnar representation.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.util.errors import ConfigurationError, NormalizationError


class _Missing:
    """Sentinel for cells a row does not populate (distinct from ``None``)."""

    _instance: Optional["_Missing"] = None

    def __new__(cls) -> "_Missing":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "MISSING"

    def __bool__(self) -> bool:
        return False


#: The one shared missing-cell sentinel.
MISSING = _Missing()

Record = Dict[str, object]


def _hashable(value: object) -> object:
    """A hashable stand-in for a cell value (dict/list cells become tuples).

    Scenario parameter-override cells are stored as dictionaries for readable
    records and JSON; grouping and dedup keys need a hashable form.
    """
    if isinstance(value, dict):
        return tuple(sorted((key, _hashable(item)) for key, item in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(item) for item in value)
    return value


class ResultSet:
    """An immutable columnar table of evaluation results.

    Parameters
    ----------
    columns:
        Mapping of column name to cell list; all columns must have the same
        length.  Insertion order is the column order.
    name:
        Optional label (usually the name of the :class:`Study` that produced
        the results); carried through serialisation.
    """

    __slots__ = ("_columns", "_length", "name")

    def __init__(self, columns: Mapping[str, Sequence[object]], name: str = ""):
        self._columns: Dict[str, List[object]] = {
            str(key): list(values) for key, values in columns.items()
        }
        lengths = {len(values) for values in self._columns.values()}
        if len(lengths) > 1:
            raise ConfigurationError(
                f"ragged ResultSet: column lengths {sorted(lengths)} differ"
            )
        self._length = lengths.pop() if lengths else 0
        self.name = name

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_records(
        cls, records: Iterable[Record], name: str = ""
    ) -> "ResultSet":
        """Build a result set from row dictionaries.

        The column order is the first-seen key order across all records; cells
        a record does not provide are filled with :data:`MISSING`.
        """
        columns: Dict[str, List[object]] = {}
        length = 0
        for record in records:
            for key, value in record.items():
                if key not in columns:
                    columns[key] = [MISSING] * length
                columns[key].append(value)
            length += 1
            for key, cells in columns.items():
                if len(cells) < length:
                    cells.append(MISSING)
        return cls(columns, name=name)

    @classmethod
    def concat(cls, resultsets: Iterable["ResultSet"], name: str = "") -> "ResultSet":
        """Concatenate several result sets row-wise (union of columns)."""
        records: List[Record] = []
        for resultset in resultsets:
            records.extend(resultset.to_records())
        return cls.from_records(records, name=name)

    # ------------------------------------------------------------------ #
    # Shape and access
    # ------------------------------------------------------------------ #
    @property
    def columns(self) -> Tuple[str, ...]:
        """The column names, in order."""
        return tuple(self._columns)

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __iter__(self) -> Iterator[Record]:
        return iter(self.to_records())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self.columns == other.columns and self._columns == other._columns

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<ResultSet{label}: {self._length} rows x {len(self._columns)} columns>"

    def column(self, name: str) -> List[object]:
        """The cells of one column (a copy), including :data:`MISSING` cells."""
        if name not in self._columns:
            raise ConfigurationError(
                f"unknown column {name!r}; available: {', '.join(self._columns)}"
            )
        return list(self._columns[name])

    def unique(self, name: str) -> List[object]:
        """Distinct non-missing values of one column, in first-seen order."""
        seen: Dict[object, object] = {}
        for value in self.column(name):
            key = _hashable(value)
            if value is not MISSING and key not in seen:
                seen[key] = value
        return list(seen.values())

    def row(self, index: int) -> Record:
        """One row as a record (missing cells dropped)."""
        return {
            key: cells[index]
            for key, cells in self._columns.items()
            if cells[index] is not MISSING
        }

    # ------------------------------------------------------------------ #
    # Relational helpers
    # ------------------------------------------------------------------ #
    def filter(
        self,
        predicate: Optional[Callable[[Record], bool]] = None,
        **equals: object,
    ) -> "ResultSet":
        """Rows matching ``predicate`` and/or column equality constraints.

        ``rs.filter(pdn="IVR", tdp_w=4.0)`` keeps the rows whose ``pdn`` cell
        equals ``"IVR"`` and whose ``tdp_w`` cell equals ``4.0``; rows missing
        a constrained column never match, and constraining a column the result
        set does not have at all is an error (usually a typo'd name).
        """
        constraints = []
        for key, value in equals.items():
            if key not in self._columns:
                raise ConfigurationError(
                    f"unknown column {key!r}; available: {', '.join(self._columns)}"
                )
            constraints.append((self._columns[key], value))
        indices: List[int] = []
        for index in range(self._length):
            if any(cells[index] != value for cells, value in constraints):
                continue
            if predicate is not None and not predicate(self.row(index)):
                continue
            indices.append(index)
        columns = {
            key: [cells[index] for index in indices]
            for key, cells in self._columns.items()
        }
        return ResultSet(columns, name=self.name)

    def pivot(
        self, index: str, columns: str, values: str
    ) -> Dict[object, Dict[object, object]]:
        """Pivot into a nested ``index -> column -> value`` mapping.

        The output feeds :func:`repro.analysis.reporting.format_mapping_table`
        directly; with duplicate ``(index, column)`` pairs the last row wins.
        """
        for name in (index, columns, values):
            if name not in self._columns:
                raise ConfigurationError(
                    f"unknown column {name!r}; available: {', '.join(self._columns)}"
                )
        table: Dict[object, Dict[object, object]] = {}
        for row_index in range(self._length):
            row_key = self._columns[index][row_index]
            column_key = self._columns[columns][row_index]
            value = self._columns[values][row_index]
            if MISSING in (row_key, column_key, value):
                continue
            table.setdefault(row_key, {})[column_key] = value
        return table

    def normalize_to(
        self,
        baseline: str,
        value_columns: Optional[Sequence[str]] = None,
        key_column: str = "pdn",
        metric_columns: Optional[Sequence[str]] = None,
    ) -> "ResultSet":
        """Divide the value columns by the ``baseline`` row of each scenario.

        Rows are grouped by scenario -- every column that is neither
        ``key_column``, nor a value column, nor one of the metric columns
        (columns that vary per PDN and are never part of a scenario's
        identity); within each group the value cells are divided by the cells
        of the row whose ``key_column`` equals ``baseline`` -- the paper's
        "normalised to the IVR PDN" convention.

        ``metric_columns`` defaults to the analytic-sweep metrics
        (``etee``/``supply_power_w``/``nominal_power_w``); result sets with a
        different metric schema (e.g. the interval-simulation output, whose
        mode-switch counters also vary per PDN) pass their own metric set --
        see :data:`repro.sim.adapters.SIM_METRIC_COLUMNS`.

        Raises
        ------
        NormalizationError
            When a scenario has no baseline row, or the baseline row's value
            is missing, zero or NaN -- naming the offending baseline key,
            column and scenario instead of propagating a
            ``ZeroDivisionError`` or silently emitting NaN cells.  The error
            is a ``ValueError`` subclass (and a ``ConfigurationError``).
        """
        if key_column not in self._columns:
            raise ConfigurationError(f"key column {key_column!r} not in result set")
        if metric_columns is None:
            metric_columns = ("etee", "supply_power_w", "nominal_power_w")
        if value_columns is None:
            value_columns = [
                column for column in metric_columns if column in self._columns
            ]
        if not value_columns:
            raise ConfigurationError("no value columns to normalise")
        for column in value_columns:
            if column not in self._columns:
                raise ConfigurationError(f"value column {column!r} not in result set")
        non_scenario = {key_column, *metric_columns}
        non_scenario.update(value_columns)
        group_columns = [
            column for column in self._columns if column not in non_scenario
        ]

        def group_key(index: int) -> Tuple[object, ...]:
            """The scenario identity of one row (hashable group columns)."""
            return tuple(
                _hashable(self._columns[column][index]) for column in group_columns
            )

        references: Dict[Tuple[object, ...], Dict[str, object]] = {}
        for index in range(self._length):
            if self._columns[key_column][index] == baseline:
                references[group_key(index)] = {
                    column: self._columns[column][index] for column in value_columns
                }
        normalised = {key: list(cells) for key, cells in self._columns.items()}
        for index in range(self._length):
            reference = references.get(group_key(index))
            if reference is None:
                raise NormalizationError(
                    f"no {key_column}={baseline!r} row for scenario {group_key(index)!r}"
                )
            for column in value_columns:
                cell = normalised[column][index]
                if cell is MISSING:
                    continue
                reference_value = reference[column]
                if reference_value is MISSING:
                    # Leaving the absolute value would silently mix raw and
                    # normalised cells in one column.
                    raise NormalizationError(
                        f"baseline {key_column}={baseline!r} row for scenario "
                        f"{group_key(index)!r} has no {column!r} value; "
                        "cannot normalise"
                    )
                if reference_value == 0.0:
                    raise NormalizationError(
                        f"baseline {key_column}={baseline!r} value of {column!r} "
                        f"for scenario {group_key(index)!r} is zero; "
                        "cannot normalise"
                    )
                if isinstance(reference_value, float) and reference_value != reference_value:
                    raise NormalizationError(
                        f"baseline {key_column}={baseline!r} value of {column!r} "
                        f"for scenario {group_key(index)!r} is NaN; "
                        "cannot normalise"
                    )
                normalised[column][index] = cell / reference_value
        return ResultSet(normalised, name=self.name)

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_records(self) -> List[Record]:
        """The rows as plain dictionaries (missing cells dropped)."""
        return [self.row(index) for index in range(self._length)]

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise as JSON (missing cells become ``null``)."""
        payload = {
            "name": self.name,
            "columns": list(self._columns),
            "rows": [
                [
                    None if cells[index] is MISSING else cells[index]
                    for cells in self._columns.values()
                ]
                for index in range(self._length)
            ],
        }
        return json.dumps(payload, indent=indent, default=str)

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        """Rebuild a result set from :meth:`to_json` output."""
        payload = json.loads(text)
        try:
            column_names = payload["columns"]
            rows = payload["rows"]
        except (TypeError, KeyError) as error:
            raise ConfigurationError(
                "not a serialised ResultSet: expected 'columns' and 'rows' keys"
            ) from error
        columns: Dict[str, List[object]] = {name: [] for name in column_names}
        for row in rows:
            if len(row) != len(column_names):
                raise ConfigurationError(
                    f"row width {len(row)} does not match {len(column_names)} columns"
                )
            for name, cell in zip(column_names, row):
                columns[name].append(MISSING if cell is None else cell)
        return cls(columns, name=payload.get("name", ""))

    def to_csv(self) -> str:
        """Serialise as CSV with a header row (missing cells become empty)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(list(self._columns))
        for index in range(self._length):
            writer.writerow(
                [
                    "" if cells[index] is MISSING else cells[index]
                    for cells in self._columns.values()
                ]
            )
        return buffer.getvalue()
