"""The columnar :class:`ResultSet` container.

Every evaluation surface of the library -- :meth:`PdnSpot.run`, the sweep
shims, the experiment drivers and the CLI ``sweep``/``export`` commands --
produces a :class:`ResultSet`: a small, dependency-free columnar table with
typed accessors, relational-style helpers (:meth:`ResultSet.filter`,
:meth:`ResultSet.pivot`, :meth:`ResultSet.normalize_to`) and loss-free
serialisation (:meth:`ResultSet.to_json` / :meth:`ResultSet.from_json`,
:meth:`ResultSet.to_csv` / :meth:`ResultSet.from_csv`).  The JSON output is
strictly RFC 8259-compliant: non-finite floats are written as ``null`` and
recorded in a ``non_finite`` mask so they round-trip exactly (NaN cells
never leak as the bare ``NaN`` token that breaks ``jq`` and ``JSON.parse``).

A result set is rectangular but *ragged-schema*: rows produced by different
scenario kinds may populate different columns (an active-workload row has an
``application_ratio``, a package-C-state row has a ``power_state``).  Absent
cells hold the :data:`MISSING` sentinel and are dropped again by
:meth:`ResultSet.to_records`, so records round-trip exactly through the
columnar representation.
"""

from __future__ import annotations

import ast
import csv
import io
import json
import math
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.util.errors import ConfigurationError, NormalizationError


class _Missing:
    """Sentinel for cells a row does not populate (distinct from ``None``)."""

    _instance: Optional["_Missing"] = None

    def __new__(cls) -> "_Missing":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "MISSING"

    def __bool__(self) -> bool:
        return False


#: The one shared missing-cell sentinel.
MISSING = _Missing()

Record = Dict[str, object]

#: Labels the JSON ``non_finite`` mask uses for the three non-finite floats
#: (which RFC 8259 cannot represent), and their restored values.
_NON_FINITE_VALUES = {"nan": float("nan"), "inf": math.inf, "-inf": -math.inf}


def _non_finite_label(value: float) -> str:
    """The mask label of one non-finite float."""
    if math.isnan(value):
        return "nan"
    return "inf" if value > 0 else "-inf"


def _scrub_nested_non_finite(value: object) -> object:
    """Replace non-finite floats *inside* container cells with ``None``.

    Top-level float cells get the exact ``non_finite``-mask treatment in
    :meth:`ResultSet.to_json`; values nested in dict/list/tuple cells cannot
    be addressed by a ``[row, column]`` position, so they degrade to plain
    ``null`` (better than crashing ``allow_nan=False`` or emitting the bare
    ``NaN`` token).  Returns the value unchanged when nothing is non-finite.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        scrubbed: Dict[object, object] = {}
        changed = False
        for key, item in value.items():
            if isinstance(key, float) and not math.isfinite(key):
                # json.dumps would reject (or mis-token) a non-finite float
                # *key*; its label string is the closest legal spelling.
                key = _non_finite_label(key)
                changed = True
            new_item = _scrub_nested_non_finite(item)
            changed = changed or new_item is not item
            scrubbed[key] = new_item
        return scrubbed if changed else value
    if isinstance(value, (list, tuple)):
        scrubbed_items = [_scrub_nested_non_finite(item) for item in value]
        if all(new is old for new, old in zip(scrubbed_items, value)):
            return value
        # A plain list, deliberately: json.dumps renders lists, tuples and
        # namedtuples as the same array, and reconstructing type(value)
        # would crash on namedtuples (their ctor takes one arg per field).
        return scrubbed_items
    return value


def _parse_csv_cell(token: str) -> object:
    """Restore one CSV cell to its most specific Python value.

    The inverse of the ``str()`` rendering :meth:`ResultSet.to_csv` applies:
    empty -> :data:`MISSING`, Python literal -> that literal, numeric-looking
    (incl. ``nan``/``inf``) -> float, anything else -> the raw string.
    """
    if token == "":
        return MISSING
    try:
        return ast.literal_eval(token)
    except (ValueError, SyntaxError, MemoryError, RecursionError):
        pass
    try:
        return float(token)  # literal_eval rejects nan/inf spellings
    except ValueError:
        return token


def _cells_equal(left: object, right: object) -> bool:
    """Cell equality with ``NaN == NaN`` (used by :meth:`ResultSet.__eq__`)."""
    if (
        isinstance(left, float)
        and isinstance(right, float)
        and math.isnan(left)
        and math.isnan(right)
    ):
        return True
    return left == right


def _hashable(value: object) -> object:
    """A hashable stand-in for a cell value (dict/list cells become tuples).

    Scenario parameter-override cells are stored as dictionaries for readable
    records and JSON; grouping and dedup keys need a hashable form.
    """
    if isinstance(value, dict):
        return tuple(sorted((key, _hashable(item)) for key, item in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(item) for item in value)
    return value


class ResultSet:
    """An immutable columnar table of evaluation results.

    Parameters
    ----------
    columns:
        Mapping of column name to cell list; all columns must have the same
        length.  Insertion order is the column order.
    name:
        Optional label (usually the name of the :class:`Study` that produced
        the results); carried through serialisation.
    """

    __slots__ = ("_columns", "_length", "name", "run_stats")

    def __init__(self, columns: Mapping[str, Sequence[object]], name: str = ""):
        self._columns: Dict[str, List[object]] = {
            str(key): list(values) for key, values in columns.items()
        }
        lengths = {len(values) for values in self._columns.values()}
        if len(lengths) > 1:
            raise ConfigurationError(
                f"ragged ResultSet: column lengths {sorted(lengths)} differ"
            )
        self._length = lengths.pop() if lengths else 0
        self.name = name
        #: Advisory :class:`~repro.obs.runstats.RunStats` of the run that
        #: produced this table (set by the engines' ``run`` methods).
        #: Never serialized and never part of equality, so bit-identity
        #: contracts across executors and the serve boundary are untouched.
        self.run_stats = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_records(
        cls, records: Iterable[Record], name: str = ""
    ) -> "ResultSet":
        """Build a result set from row dictionaries.

        The column order is the first-seen key order across all records; cells
        a record does not provide are filled with :data:`MISSING`.
        """
        columns: Dict[str, List[object]] = {}
        length = 0
        for record in records:
            for key, value in record.items():
                if key not in columns:
                    columns[key] = [MISSING] * length
                columns[key].append(value)
            length += 1
            for key, cells in columns.items():
                if len(cells) < length:
                    cells.append(MISSING)
        return cls(columns, name=name)

    @classmethod
    def concat(cls, resultsets: Iterable["ResultSet"], name: str = "") -> "ResultSet":
        """Concatenate several result sets row-wise (union of columns)."""
        records: List[Record] = []
        for resultset in resultsets:
            records.extend(resultset.to_records())
        return cls.from_records(records, name=name)

    # ------------------------------------------------------------------ #
    # Shape and access
    # ------------------------------------------------------------------ #
    @property
    def columns(self) -> Tuple[str, ...]:
        """The column names, in order."""
        return tuple(self._columns)

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __iter__(self) -> Iterator[Record]:
        return iter(self.to_records())

    def __eq__(self, other: object) -> bool:
        """Column-order- and cell-wise equality, treating NaN cells as equal.

        Plain ``==`` on the column lists would make any result set with a
        NaN cell unequal to *itself de-serialised* (``nan != nan``), which
        broke the documented JSON/CSV round-trip guarantee; NaN in the same
        cell on both sides therefore compares equal here.
        """
        if not isinstance(other, ResultSet):
            return NotImplemented
        if self.columns != other.columns or self._length != other._length:
            return False
        if self._columns == other._columns:
            return True  # C-speed fast path; NaN-free tables end here
        return all(
            _cells_equal(cells[index], other._columns[name][index])
            for name, cells in self._columns.items()
            for index in range(self._length)
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<ResultSet{label}: {self._length} rows x {len(self._columns)} columns>"

    def column(self, name: str) -> List[object]:
        """The cells of one column (a copy), including :data:`MISSING` cells."""
        if name not in self._columns:
            raise ConfigurationError(
                f"unknown column {name!r}; available: {', '.join(self._columns)}"
            )
        return list(self._columns[name])

    def unique(self, name: str) -> List[object]:
        """Distinct non-missing values of one column, in first-seen order."""
        seen: Dict[object, object] = {}
        for value in self.column(name):
            key = _hashable(value)
            if value is not MISSING and key not in seen:
                seen[key] = value
        return list(seen.values())

    def row(self, index: int) -> Record:
        """One row as a record (missing cells dropped)."""
        return {
            key: cells[index]
            for key, cells in self._columns.items()
            if cells[index] is not MISSING
        }

    # ------------------------------------------------------------------ #
    # Relational helpers
    # ------------------------------------------------------------------ #
    def filter(
        self,
        predicate: Optional[Callable[[Record], bool]] = None,
        **equals: object,
    ) -> "ResultSet":
        """Rows matching ``predicate`` and/or column equality constraints.

        ``rs.filter(pdn="IVR", tdp_w=4.0)`` keeps the rows whose ``pdn`` cell
        equals ``"IVR"`` and whose ``tdp_w`` cell equals ``4.0``; rows missing
        a constrained column never match, and constraining a column the result
        set does not have at all is an error (usually a typo'd name).
        """
        constraints = []
        for key, value in equals.items():
            if key not in self._columns:
                raise ConfigurationError(
                    f"unknown column {key!r}; available: {', '.join(self._columns)}"
                )
            constraints.append((self._columns[key], value))
        indices: List[int] = []
        for index in range(self._length):
            if any(cells[index] != value for cells, value in constraints):
                continue
            if predicate is not None and not predicate(self.row(index)):
                continue
            indices.append(index)
        columns = {
            key: [cells[index] for index in indices]
            for key, cells in self._columns.items()
        }
        return ResultSet(columns, name=self.name)

    def pivot(
        self, index: str, columns: str, values: str
    ) -> Dict[object, Dict[object, object]]:
        """Pivot into a nested ``index -> column -> value`` mapping.

        The output feeds :func:`repro.analysis.reporting.format_mapping_table`
        directly; with duplicate ``(index, column)`` pairs the last row wins.
        """
        for name in (index, columns, values):
            if name not in self._columns:
                raise ConfigurationError(
                    f"unknown column {name!r}; available: {', '.join(self._columns)}"
                )
        table: Dict[object, Dict[object, object]] = {}
        for row_index in range(self._length):
            row_key = self._columns[index][row_index]
            column_key = self._columns[columns][row_index]
            value = self._columns[values][row_index]
            if MISSING in (row_key, column_key, value):
                continue
            table.setdefault(row_key, {})[column_key] = value
        return table

    def normalize_to(
        self,
        baseline: str,
        value_columns: Optional[Sequence[str]] = None,
        key_column: str = "pdn",
        metric_columns: Optional[Sequence[str]] = None,
    ) -> "ResultSet":
        """Divide the value columns by the ``baseline`` row of each scenario.

        Rows are grouped by scenario -- every column that is neither
        ``key_column``, nor a value column, nor one of the metric columns
        (columns that vary per PDN and are never part of a scenario's
        identity); within each group the value cells are divided by the cells
        of the row whose ``key_column`` equals ``baseline`` -- the paper's
        "normalised to the IVR PDN" convention.

        ``metric_columns`` defaults to the analytic-sweep metrics
        (``etee``/``supply_power_w``/``nominal_power_w``); result sets with a
        different metric schema (e.g. the interval-simulation output, whose
        mode-switch counters also vary per PDN) pass their own metric set --
        see :data:`repro.sim.adapters.SIM_METRIC_COLUMNS`.

        Raises
        ------
        NormalizationError
            When a scenario has no baseline row, or the baseline row's value
            is missing, zero or NaN -- naming the offending baseline key,
            column and scenario instead of propagating a
            ``ZeroDivisionError`` or silently emitting NaN cells.  The error
            is a ``ValueError`` subclass (and a ``ConfigurationError``).
        """
        if key_column not in self._columns:
            raise ConfigurationError(f"key column {key_column!r} not in result set")
        if metric_columns is None:
            metric_columns = ("etee", "supply_power_w", "nominal_power_w")
        if value_columns is None:
            value_columns = [
                column for column in metric_columns if column in self._columns
            ]
        if not value_columns:
            raise ConfigurationError("no value columns to normalise")
        for column in value_columns:
            if column not in self._columns:
                raise ConfigurationError(f"value column {column!r} not in result set")
        non_scenario = {key_column, *metric_columns}
        non_scenario.update(value_columns)
        group_columns = [
            column for column in self._columns if column not in non_scenario
        ]

        def group_key(index: int) -> Tuple[object, ...]:
            """The scenario identity of one row (hashable group columns)."""
            return tuple(
                _hashable(self._columns[column][index]) for column in group_columns
            )

        references: Dict[Tuple[object, ...], Dict[str, object]] = {}
        for index in range(self._length):
            if self._columns[key_column][index] == baseline:
                references[group_key(index)] = {
                    column: self._columns[column][index] for column in value_columns
                }
        normalised = {key: list(cells) for key, cells in self._columns.items()}
        for index in range(self._length):
            reference = references.get(group_key(index))
            if reference is None:
                raise NormalizationError(
                    f"no {key_column}={baseline!r} row for scenario {group_key(index)!r}"
                )
            for column in value_columns:
                cell = normalised[column][index]
                if cell is MISSING:
                    continue
                reference_value = reference[column]
                if reference_value is MISSING:
                    # Leaving the absolute value would silently mix raw and
                    # normalised cells in one column.
                    raise NormalizationError(
                        f"baseline {key_column}={baseline!r} row for scenario "
                        f"{group_key(index)!r} has no {column!r} value; "
                        "cannot normalise"
                    )
                if reference_value == 0.0:
                    raise NormalizationError(
                        f"baseline {key_column}={baseline!r} value of {column!r} "
                        f"for scenario {group_key(index)!r} is zero; "
                        "cannot normalise"
                    )
                if isinstance(reference_value, float) and reference_value != reference_value:
                    raise NormalizationError(
                        f"baseline {key_column}={baseline!r} value of {column!r} "
                        f"for scenario {group_key(index)!r} is NaN; "
                        "cannot normalise"
                    )
                normalised[column][index] = cell / reference_value
        return ResultSet(normalised, name=self.name)

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_records(self) -> List[Record]:
        """The rows as plain dictionaries (missing cells dropped)."""
        return [self.row(index) for index in range(self._length)]

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise as strictly RFC 8259-compliant JSON.

        Missing cells become ``null``.  Non-finite floats -- which
        ``json.dumps`` would otherwise emit as the bare ``NaN`` /
        ``Infinity`` tokens no standard JSON parser (``jq``, JavaScript's
        ``JSON.parse``) accepts -- are *also* written as ``null``, with
        their positions recorded in a ``non_finite`` mask so
        :meth:`from_json` restores them exactly; the output always parses
        with ``allow_nan``-strict decoders.  Non-finite floats nested
        *inside* container cells (a ``parameters`` dict, say) cannot be
        mask-addressed and degrade to plain ``null``.
        """
        rows: List[List[object]] = []
        non_finite: Dict[str, List[List[int]]] = {}
        for index in range(self._length):
            row: List[object] = []
            for column_index, cells in enumerate(self._columns.values()):
                cell = cells[index]
                if cell is MISSING:
                    cell = None
                elif isinstance(cell, float) and not math.isfinite(cell):
                    non_finite.setdefault(_non_finite_label(cell), []).append(
                        [index, column_index]
                    )
                    cell = None
                elif isinstance(cell, (dict, list, tuple)):
                    cell = _scrub_nested_non_finite(cell)
                row.append(cell)
            rows.append(row)
        payload: Dict[str, object] = {
            "name": self.name,
            "columns": list(self._columns),
            "rows": rows,
        }
        if non_finite:
            payload["non_finite"] = non_finite
        return json.dumps(payload, indent=indent, default=str, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        """Rebuild a result set from :meth:`to_json` output.

        ``null`` cells listed in the payload's ``non_finite`` mask are
        restored to ``float("nan")`` / ``±inf``; every other ``null`` is a
        missing cell, exactly as written.
        """
        payload = json.loads(text)
        try:
            column_names = payload["columns"]
            rows = payload["rows"]
        except (TypeError, KeyError) as error:
            raise ConfigurationError(
                "not a serialised ResultSet: expected 'columns' and 'rows' keys"
            ) from error
        restored: Dict[Tuple[int, int], float] = {}
        mask = payload.get("non_finite", {})
        if not isinstance(mask, dict):
            raise ConfigurationError("'non_finite' must map labels to positions")
        for label, positions in mask.items():
            if label not in _NON_FINITE_VALUES:
                raise ConfigurationError(
                    f"unknown non-finite label {label!r}; expected one of: "
                    f"{', '.join(_NON_FINITE_VALUES)}"
                )
            if not isinstance(positions, (list, tuple)):
                raise ConfigurationError(
                    f"malformed non_finite position list {positions!r}"
                )
            for position in positions:
                if (
                    not isinstance(position, (list, tuple))
                    or len(position) != 2
                    or not all(isinstance(index, int) for index in position)
                ):
                    raise ConfigurationError(
                        f"malformed non_finite position {position!r}; "
                        "expected [row, column]"
                    )
                row_index, column_index = position
                try:
                    is_null = (
                        row_index >= 0
                        and column_index >= 0
                        and rows[row_index][column_index] is None
                    )
                except (IndexError, TypeError):
                    is_null = False
                if not is_null:
                    # A mask pointing at a missing or non-null cell means the
                    # payload was truncated or edited; silently dropping the
                    # NaN would change data, so fail like the other malformed
                    # mask shapes do.
                    raise ConfigurationError(
                        f"non_finite position {position!r} does not reference "
                        "a null cell of 'rows'"
                    )
                restored[(row_index, column_index)] = _NON_FINITE_VALUES[label]
        columns: Dict[str, List[object]] = {name: [] for name in column_names}
        for row_index, row in enumerate(rows):
            if len(row) != len(column_names):
                raise ConfigurationError(
                    f"row width {len(row)} does not match {len(column_names)} columns"
                )
            for column_index, (name, cell) in enumerate(zip(column_names, row)):
                if cell is None:
                    cell = restored.get((row_index, column_index), MISSING)
                columns[name].append(cell)
        return cls(columns, name=payload.get("name", ""))

    def to_csv(self) -> str:
        """Serialise as CSV with a header row (missing cells become empty)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(list(self._columns))
        for index in range(self._length):
            writer.writerow(
                [
                    "" if cells[index] is MISSING else cells[index]
                    for cells in self._columns.values()
                ]
            )
        return buffer.getvalue()

    @classmethod
    def from_csv(cls, text: str, name: str = "") -> "ResultSet":
        """Rebuild a result set from :meth:`to_csv` output (typed restore).

        CSV is stringly typed, so cell types are restored heuristically,
        matching how :meth:`to_csv` rendered them: empty cells become
        :data:`MISSING`; Python literals (ints, floats, booleans, the
        ``str()`` form of dict/list/tuple cells such as the ``parameters``
        column) are parsed back with :func:`ast.literal_eval`; ``nan`` /
        ``inf`` / ``-inf`` become the non-finite floats; everything else
        stays a string.  ``from_csv(rs.to_csv()) == rs`` holds for tables of
        non-empty strings, ints, floats (including NaN), booleans and dict
        cells -- the documented round-trip.  Four CSV-inherent ambiguities
        are resolved lossily: empty-*string* and ``None`` cells come back
        as :data:`MISSING` (CSV writes all three as an empty field); cells that
        only *look* numeric (a string column holding ``"42"``) come back as
        numbers; and a *container* cell holding a non-finite float (its
        ``str()`` form embeds a bare ``nan``/``inf`` no literal parser
        accepts) comes back as that string.  Use JSON -- whose
        ``non_finite`` mask is exact -- where those distinctions matter.
        """
        reader = csv.reader(io.StringIO(text))
        try:
            header = next(reader)
        except StopIteration:
            raise ConfigurationError("empty CSV: expected a header row") from None
        if len(set(header)) != len(header):
            raise ConfigurationError("duplicate column names in CSV header")
        columns: Dict[str, List[object]] = {column: [] for column in header}
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue  # csv.reader yields [] for stray blank lines
            if len(row) != len(header):
                raise ConfigurationError(
                    f"CSV line {line_number}: row width {len(row)} does not "
                    f"match {len(header)} columns"
                )
            for column, token in zip(header, row):
                columns[column].append(_parse_csv_cell(token))
        return cls(columns, name=name)
