"""Legacy sweep helpers -- **removed**; use the Study engine.

The original analysis layer exposed three ad-hoc sweep functions returning
flat lists of dictionaries (``sweep_tdp``, ``sweep_application_ratio``,
``sweep_power_states``).  They were deprecated in favour of the declarative
:class:`repro.analysis.study.Study` /
:class:`repro.analysis.resultset.ResultSet` API and have now been deleted --
build a study, run it with :meth:`repro.analysis.pdnspot.PdnSpot.run`
(cached, executor-aware, columnar-vectorized) and call
:meth:`ResultSet.to_records` if you need the old record layout::

    spot = PdnSpot()
    records = spot.run(Study.over_tdps([4.0, 18.0, 50.0])).to_records()

The migration guide is the canonical reference for the old-to-new mapping;
importing a removed helper raises with the replacement spelled out.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

Record = Dict[str, object]


#: Where the sweep -> Study migration guide lives: the ``guides/migration/``
#: page of the MkDocs site CI builds from ``docs/guides/migration.md``.
MIGRATION_GUIDE = "docs/guides/migration.md (guides/migration/ on the docs site)"

#: The removed helpers and their Study-engine replacements, used to build the
#: ImportError message (and mirrored by the migration guide's table).
_REMOVED = {
    "sweep_tdp": "PdnSpot().run(Study.over_tdps(tdps_w, application_ratio, "
    "workload_type)).to_records()",
    "sweep_application_ratio": "PdnSpot().run(Study.over_application_ratios("
    "application_ratios, tdp_w, workload_type)).to_records()",
    "sweep_power_states": "PdnSpot().run(Study.over_power_states(tdp_w, "
    "power_states)).to_records()",
}


def __getattr__(name: str):
    if name in _REMOVED:
        raise ImportError(
            f"{name} was removed: the deprecated ad-hoc sweep helpers are "
            f"superseded by the Study engine. Use "
            f"{_REMOVED[name]} (records are identical), and see the "
            f"migration guide: {MIGRATION_GUIDE}",
            name=__name__,
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def records_for_pdn(records: Iterable[Record], pdn_name: str) -> List[Record]:
    """Filter sweep-style records down to one PDN.

    Kept for convenience; the :class:`ResultSet` equivalent is
    ``resultset.filter(pdn=pdn_name)``.
    """
    return [record for record in records if record["pdn"] == pdn_name]
