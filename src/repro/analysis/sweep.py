"""Legacy sweep helpers (deprecated shims over the Study engine).

The original analysis layer exposed three ad-hoc sweep functions returning
flat lists of dictionaries.  They are superseded by the declarative
:class:`repro.analysis.study.Study` /
:class:`repro.analysis.resultset.ResultSet` API -- build a study, run it with
:meth:`repro.analysis.pdnspot.PdnSpot.run` (cached) and call
:meth:`ResultSet.to_records` if you need the old record layout::

    spot = PdnSpot()
    records = spot.run(Study.over_tdps([4.0, 18.0, 50.0])).to_records()

The helpers below remain as thin deprecated shims that delegate to the same
engine and return byte-identical records, so existing callers keep working
while emitting a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, List, Sequence

from repro.analysis.study import Study, evaluate_study
from repro.pdn.base import PowerDeliveryNetwork
from repro.power.domains import WorkloadType
from repro.power.power_states import BATTERY_LIFE_STATES, PackageCState

Record = Dict[str, object]


#: Where the sweep -> Study migration guide lives: the ``guides/migration/``
#: page of the MkDocs site CI builds from ``docs/guides/migration.md``.
MIGRATION_GUIDE = "docs/guides/migration.md (guides/migration/ on the docs site)"


def _deprecated(name: str) -> None:
    warnings.warn(
        f"{name} is deprecated; build a Study and run it with PdnSpot.run "
        f"(see repro.analysis.study and the migration guide: "
        f"{MIGRATION_GUIDE})",
        DeprecationWarning,
        stacklevel=3,
    )


def sweep_tdp(
    pdns: Iterable[PowerDeliveryNetwork],
    tdps_w: Sequence[float],
    application_ratio: float = 0.56,
    workload_type: WorkloadType = WorkloadType.CPU_MULTI_THREAD,
) -> List[Record]:
    """ETEE of each PDN at each TDP (fixed AR and workload type).

    .. deprecated::
        Use ``PdnSpot.run(Study.over_tdps(...))`` instead.
    """
    _deprecated("sweep_tdp")
    pdn_list = list(pdns)
    study = Study.over_tdps(tdps_w, application_ratio, workload_type)
    return evaluate_study(study, pdn_list).to_records()


def sweep_application_ratio(
    pdns: Iterable[PowerDeliveryNetwork],
    application_ratios: Sequence[float],
    tdp_w: float,
    workload_type: WorkloadType = WorkloadType.CPU_MULTI_THREAD,
) -> List[Record]:
    """ETEE of each PDN across application ratios (fixed TDP and type).

    .. deprecated::
        Use ``PdnSpot.run(Study.over_application_ratios(...))`` instead.
    """
    _deprecated("sweep_application_ratio")
    pdn_list = list(pdns)
    study = Study.over_application_ratios(application_ratios, tdp_w, workload_type)
    return evaluate_study(study, pdn_list).to_records()


def sweep_power_states(
    pdns: Iterable[PowerDeliveryNetwork],
    tdp_w: float,
    power_states: Sequence[PackageCState] = BATTERY_LIFE_STATES,
) -> List[Record]:
    """ETEE of each PDN across the battery-life package power states.

    .. deprecated::
        Use ``PdnSpot.run(Study.over_power_states(...))`` instead.
    """
    _deprecated("sweep_power_states")
    pdn_list = list(pdns)
    study = Study.over_power_states(tdp_w, power_states)
    return evaluate_study(study, pdn_list).to_records()


def records_for_pdn(records: Iterable[Record], pdn_name: str) -> List[Record]:
    """Filter sweep records down to one PDN.

    Kept for convenience; the :class:`ResultSet` equivalent is
    ``resultset.filter(pdn=pdn_name)``.
    """
    return [record for record in records if record["pdn"] == pdn_name]
