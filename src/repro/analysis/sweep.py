"""Generic sweep helpers.

The experiments and examples repeatedly need the same three sweeps: ETEE over
TDP, ETEE over application ratio, and ETEE over package power state, for one
or more PDN architectures.  Each helper returns a flat list of dictionaries
(records) so the results can be tabulated, asserted against in tests, or
post-processed with numpy without the library imposing a dataframe dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.pdn.base import OperatingConditions, PowerDeliveryNetwork
from repro.power.domains import WorkloadType
from repro.power.power_states import BATTERY_LIFE_STATES, PackageCState

Record = Dict[str, object]


def sweep_tdp(
    pdns: Iterable[PowerDeliveryNetwork],
    tdps_w: Sequence[float],
    application_ratio: float = 0.56,
    workload_type: WorkloadType = WorkloadType.CPU_MULTI_THREAD,
) -> List[Record]:
    """ETEE of each PDN at each TDP (fixed AR and workload type)."""
    records: List[Record] = []
    pdn_list = list(pdns)
    for tdp_w in tdps_w:
        conditions = OperatingConditions.for_active_workload(
            tdp_w, application_ratio, workload_type
        )
        for pdn in pdn_list:
            evaluation = pdn.evaluate(conditions)
            records.append(
                {
                    "pdn": pdn.name,
                    "tdp_w": tdp_w,
                    "application_ratio": application_ratio,
                    "workload_type": workload_type.value,
                    "etee": evaluation.etee,
                    "supply_power_w": evaluation.supply_power_w,
                    "nominal_power_w": evaluation.nominal_power_w,
                }
            )
    return records


def sweep_application_ratio(
    pdns: Iterable[PowerDeliveryNetwork],
    application_ratios: Sequence[float],
    tdp_w: float,
    workload_type: WorkloadType = WorkloadType.CPU_MULTI_THREAD,
) -> List[Record]:
    """ETEE of each PDN across application ratios (fixed TDP and type)."""
    records: List[Record] = []
    pdn_list = list(pdns)
    for application_ratio in application_ratios:
        conditions = OperatingConditions.for_active_workload(
            tdp_w, application_ratio, workload_type
        )
        for pdn in pdn_list:
            evaluation = pdn.evaluate(conditions)
            records.append(
                {
                    "pdn": pdn.name,
                    "tdp_w": tdp_w,
                    "application_ratio": application_ratio,
                    "workload_type": workload_type.value,
                    "etee": evaluation.etee,
                    "supply_power_w": evaluation.supply_power_w,
                    "nominal_power_w": evaluation.nominal_power_w,
                }
            )
    return records


def sweep_power_states(
    pdns: Iterable[PowerDeliveryNetwork],
    tdp_w: float,
    power_states: Sequence[PackageCState] = BATTERY_LIFE_STATES,
) -> List[Record]:
    """ETEE of each PDN across the battery-life package power states."""
    records: List[Record] = []
    pdn_list = list(pdns)
    for state in power_states:
        conditions = OperatingConditions.for_power_state(tdp_w, state)
        for pdn in pdn_list:
            evaluation = pdn.evaluate(conditions)
            records.append(
                {
                    "pdn": pdn.name,
                    "tdp_w": tdp_w,
                    "power_state": state.value,
                    "etee": evaluation.etee,
                    "supply_power_w": evaluation.supply_power_w,
                    "nominal_power_w": evaluation.nominal_power_w,
                }
            )
    return records


def records_for_pdn(records: Iterable[Record], pdn_name: str) -> List[Record]:
    """Filter sweep records down to one PDN."""
    return [record for record in records if record["pdn"] == pdn_name]
