"""Model-validation harness (Sec. 4.3).

The paper validates PDNspot by comparing its predicted end-to-end efficiency
against ETEE measured on real Broadwell/Skylake systems over 200 traces,
reporting ~99 % average accuracy per PDN.  Without the silicon, the harness
here follows the same protocol against a *synthetic measured reference*: the
same PDN models evaluated with perturbed technology parameters (tolerance
bands, load-lines, leakage exponent drawn from their Table-2 ranges) plus a
small multiplicative measurement-noise term, seeded for reproducibility.

This serves two purposes: it exercises the full validation pipeline (trace
generation, per-trace evaluation, accuracy statistics, the Fig. 4 grid), and
it demonstrates the models' insensitivity to parameter uncertainty within the
published ranges -- which is the property the paper's validation establishes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.pdn.base import OperatingConditions
from repro.pdn.registry import build_pdn
from repro.power.domains import WorkloadType
from repro.power.parameters import PdnTechnologyParameters, default_parameters
from repro.power.power_states import BATTERY_LIFE_STATES, PackageCState
from repro.util.validation import require_positive
from repro.workloads.base import Benchmark
from repro.workloads.synthetic import SyntheticTraceGenerator


@dataclass(frozen=True)
class ValidationRecord:
    """One trace's predicted-versus-reference ETEE for one PDN."""

    pdn_name: str
    trace_name: str
    tdp_w: float
    application_ratio: float
    workload_type: str
    predicted_etee: float
    reference_etee: float

    @property
    def accuracy(self) -> float:
        """Prediction accuracy: ``1 - |predicted - reference| / reference``."""
        return 1.0 - abs(self.predicted_etee - self.reference_etee) / self.reference_etee


@dataclass(frozen=True)
class ValidationSummary:
    """Accuracy statistics of one PDN model over a trace population."""

    pdn_name: str
    records: Sequence[ValidationRecord] = field(default_factory=tuple)

    @property
    def average_accuracy(self) -> float:
        """Mean accuracy over all traces (the paper reports ~99 %)."""
        return sum(record.accuracy for record in self.records) / len(self.records)

    @property
    def min_accuracy(self) -> float:
        """Worst-case accuracy over all traces."""
        return min(record.accuracy for record in self.records)

    @property
    def max_accuracy(self) -> float:
        """Best-case accuracy over all traces."""
        return max(record.accuracy for record in self.records)


class ValidationHarness:
    """Runs the Sec. 4.3 validation protocol against a synthetic reference.

    Parameters
    ----------
    seed:
        Seed for the trace population, parameter perturbations and measurement
        noise.
    measurement_noise:
        Relative standard deviation of the synthetic measurement noise
        (the paper's power analyser is accurate to ~0.025 %, but trace-level
        repeatability is a few tenths of a percent).
    parameter_jitter:
        Relative spread applied to the perturbable technology parameters when
        building the reference model.
    """

    def __init__(
        self,
        seed: int = 7,
        measurement_noise: float = 0.004,
        parameter_jitter: float = 0.08,
        parameters: Optional[PdnTechnologyParameters] = None,
    ):
        require_positive(measurement_noise + 1.0, "measurement_noise")
        self._rng = random.Random(seed)
        self._measurement_noise = measurement_noise
        self._parameter_jitter = parameter_jitter
        self._nominal_parameters = parameters if parameters is not None else default_parameters()

    # ------------------------------------------------------------------ #
    # Reference construction
    # ------------------------------------------------------------------ #
    def reference_parameters(self) -> PdnTechnologyParameters:
        """Perturbed technology parameters representing the measured system."""
        jitter = self._parameter_jitter
        params = self._nominal_parameters

        def perturb(value: float) -> float:
            """Jitter one nominal parameter by up to +/- the configured fraction."""
            return value * (1.0 + self._rng.uniform(-jitter, jitter))

        return params.with_overrides(
            ivr_tolerance_band_v=perturb(params.ivr_tolerance_band_v),
            mbvr_tolerance_band_v=perturb(params.mbvr_tolerance_band_v),
            ldo_tolerance_band_v=perturb(params.ldo_tolerance_band_v),
            ivr_input_loadline_ohm=perturb(params.ivr_input_loadline_ohm),
            ldo_input_loadline_ohm=perturb(params.ldo_input_loadline_ohm),
            leakage_exponent=perturb(params.leakage_exponent),
        )

    def _noisy(self, value: float) -> float:
        return value * (1.0 + self._rng.gauss(0.0, self._measurement_noise))

    # ------------------------------------------------------------------ #
    # Validation runs
    # ------------------------------------------------------------------ #
    def validate_pdn(
        self,
        pdn_name: str,
        traces: Iterable[Benchmark],
        tdps_w: Sequence[float] = (4.0, 18.0, 50.0),
    ) -> ValidationSummary:
        """Validate one PDN model against the synthetic reference."""
        predicted_model = build_pdn(pdn_name, self._nominal_parameters)
        reference_model = build_pdn(pdn_name, self.reference_parameters())
        records: List[ValidationRecord] = []
        for benchmark in traces:
            for tdp_w in tdps_w:
                conditions = OperatingConditions.for_active_workload(
                    tdp_w, benchmark.application_ratio, benchmark.workload_type
                )
                predicted = predicted_model.evaluate(conditions).etee
                reference = self._noisy(reference_model.evaluate(conditions).etee)
                records.append(
                    ValidationRecord(
                        pdn_name=pdn_name,
                        trace_name=benchmark.name,
                        tdp_w=tdp_w,
                        application_ratio=benchmark.application_ratio,
                        workload_type=benchmark.workload_type.value,
                        predicted_etee=predicted,
                        reference_etee=reference,
                    )
                )
        return ValidationSummary(pdn_name=pdn_name, records=tuple(records))

    def validate_power_states(
        self,
        pdn_name: str,
        tdp_w: float = 18.0,
        power_states: Sequence[PackageCState] = BATTERY_LIFE_STATES,
    ) -> ValidationSummary:
        """Validate one PDN model over the battery-life power states (Fig. 4j)."""
        predicted_model = build_pdn(pdn_name, self._nominal_parameters)
        reference_model = build_pdn(pdn_name, self.reference_parameters())
        records: List[ValidationRecord] = []
        for state in power_states:
            conditions = OperatingConditions.for_power_state(tdp_w, state)
            predicted = predicted_model.evaluate(conditions).etee
            reference = self._noisy(reference_model.evaluate(conditions).etee)
            records.append(
                ValidationRecord(
                    pdn_name=pdn_name,
                    trace_name=state.value,
                    tdp_w=tdp_w,
                    application_ratio=conditions.application_ratio,
                    workload_type=WorkloadType.IDLE.value,
                    predicted_etee=predicted,
                    reference_etee=reference,
                )
            )
        return ValidationSummary(pdn_name=pdn_name, records=tuple(records))

    def validate_all(
        self,
        trace_count_per_type: int = 25,
        pdn_names: Sequence[str] = ("IVR", "MBVR", "LDO"),
    ) -> Dict[str, ValidationSummary]:
        """Validate the three commonly-used PDN models (the Sec. 4.3 table)."""
        generator = SyntheticTraceGenerator(seed=self._rng.randint(0, 2**31 - 1))
        traces = generator.mixed_population(trace_count_per_type)
        return {name: self.validate_pdn(name, traces) for name in pdn_names}
