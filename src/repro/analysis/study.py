"""Declarative evaluation studies.

A :class:`Study` is the typed description of a grid of operating points the
paper's PDNspot explores: TDP x application ratio x workload type for active
workloads, TDP x package power state for idle states, optionally crossed with
technology-parameter overrides.  Studies are built either through the fluent
:class:`StudyBuilder` (``Study.builder(...)``) or through the named
convenience constructors (:meth:`Study.over_tdps`,
:meth:`Study.over_application_ratios`, :meth:`Study.over_power_states`).

A study says *what* to evaluate; :meth:`repro.analysis.pdnspot.PdnSpot.run`
(cached, parameter-override aware) or :func:`evaluate_study` (plain PDN
instances) say *how*, and both return a
:class:`repro.analysis.resultset.ResultSet`.

Scenario iteration order is deterministic -- parameter overrides, then
workload type, then TDP, then application ratio for the active part, followed
by TDP then power state for the idle part -- which is exactly the record
order the legacy ``sweep_*`` helpers produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.resultset import Record, ResultSet
from repro.pdn.base import (
    OperatingConditions,
    PdnEvaluation,
    PowerDeliveryNetwork,
    evaluate_pdn,
)
from repro.power.domains import WorkloadType
from repro.power.power_states import BATTERY_LIFE_STATES, PackageCState
from repro.util.errors import ConfigurationError, ModelDomainError

#: A parameter-override set, normalised to a hashable sorted tuple of pairs.
OverrideKey = Tuple[Tuple[str, object], ...]

#: The default active operating point of the paper's comparisons (AR = 56 %,
#: CPU-intensive), used when a study axis is left unspecified.
DEFAULT_APPLICATION_RATIO = 0.56
DEFAULT_WORKLOAD_TYPE = WorkloadType.CPU_MULTI_THREAD


def _freeze_overrides(overrides: Optional[Mapping[str, object]]) -> OverrideKey:
    if not overrides:
        return ()
    return tuple(sorted(overrides.items()))


@dataclass(frozen=True)
class Scenario:
    """One named point of a study grid.

    An *active* scenario (``power_state`` is ``C0``) carries an application
    ratio and a workload type; an *idle* scenario carries a package C-state
    whose profile fixes the loads.  Either kind may carry technology-parameter
    overrides, applied on top of the evaluating :class:`PdnSpot`'s parameters.
    """

    tdp_w: float
    power_state: PackageCState = PackageCState.C0
    application_ratio: Optional[float] = None
    workload_type: Optional[WorkloadType] = None
    overrides: OverrideKey = ()

    def __post_init__(self) -> None:
        if self.is_active:
            if self.application_ratio is None or self.workload_type is None:
                raise ConfigurationError(
                    "an active (C0) scenario needs an application_ratio and a workload_type"
                )
        elif self.application_ratio is not None or self.workload_type is not None:
            raise ConfigurationError(
                f"a {self.power_state.value} scenario takes its application ratio and "
                "workload type from the power-state profile"
            )

    @property
    def is_active(self) -> bool:
        """Whether this is an active-workload (C0) scenario."""
        return self.power_state is PackageCState.C0

    def conditions(self) -> OperatingConditions:
        """Materialise the scenario as an :class:`OperatingConditions` point."""
        if self.is_active:
            return OperatingConditions.for_active_workload(
                self.tdp_w, self.application_ratio, self.workload_type
            )
        return OperatingConditions.for_power_state(self.tdp_w, self.power_state)

    def record_fields(self) -> Record:
        """The scenario's identifying record fields (legacy sweep layout)."""
        fields_: Record = {"tdp_w": self.tdp_w}
        if self.is_active:
            fields_["application_ratio"] = self.application_ratio
            fields_["workload_type"] = self.workload_type.value
        else:
            fields_["power_state"] = self.power_state.value
        if self.overrides:
            fields_["parameters"] = dict(self.overrides)
        return fields_


@dataclass(frozen=True)
class Study:
    """A named, ordered grid of :class:`Scenario` points.

    Attributes
    ----------
    name:
        Label carried into the produced :class:`ResultSet`.
    scenarios:
        The grid points, in evaluation order.
    pdn_names:
        Optional restriction of the PDN architectures to evaluate; ``None``
        means "every PDN the evaluating engine has".
    """

    name: str
    scenarios: Tuple[Scenario, ...]
    pdn_names: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a study needs a non-empty name")
        if not self.scenarios:
            raise ConfigurationError(f"study {self.name!r} has no scenarios")

    def __len__(self) -> int:
        return len(self.scenarios)

    @staticmethod
    def builder(name: str = "study") -> "StudyBuilder":
        """Start a fluent :class:`StudyBuilder`."""
        return StudyBuilder(name)

    def with_pdns(self, *names: Union[str, Sequence[str]]) -> "Study":
        """A copy of this study restricted to the named PDN architectures."""
        return Study(
            name=self.name,
            scenarios=self.scenarios,
            pdn_names=tuple(str(name) for name in _flatten(names)),
        )

    # ------------------------------------------------------------------ #
    # Convenience constructors (the three classic sweeps)
    # ------------------------------------------------------------------ #
    @classmethod
    def over_tdps(
        cls,
        tdps_w: Sequence[float],
        application_ratio: float = DEFAULT_APPLICATION_RATIO,
        workload_type: WorkloadType = DEFAULT_WORKLOAD_TYPE,
        name: str = "tdp-sweep",
    ) -> "Study":
        """ETEE-vs-TDP study at one application ratio and workload type."""
        return (
            cls.builder(name)
            .tdps(*tdps_w)
            .application_ratios(application_ratio)
            .workload_types(workload_type)
            .build()
        )

    @classmethod
    def over_application_ratios(
        cls,
        application_ratios: Sequence[float],
        tdp_w: float,
        workload_type: WorkloadType = DEFAULT_WORKLOAD_TYPE,
        name: str = "application-ratio-sweep",
    ) -> "Study":
        """ETEE-vs-AR study at one TDP and workload type."""
        return (
            cls.builder(name)
            .tdps(tdp_w)
            .application_ratios(*application_ratios)
            .workload_types(workload_type)
            .build()
        )

    @classmethod
    def over_power_states(
        cls,
        tdp_w: float,
        power_states: Sequence[PackageCState] = BATTERY_LIFE_STATES,
        name: str = "power-state-sweep",
    ) -> "Study":
        """ETEE study across the battery-life package power states."""
        return cls.builder(name).tdps(tdp_w).power_states(*power_states).build()


def _flatten(values: Tuple[object, ...]) -> List[object]:
    """Accept both ``axis(a, b, c)`` and ``axis([a, b, c])`` call styles."""
    flat: List[object] = []
    for value in values:
        if isinstance(value, (list, tuple)):
            flat.extend(value)
        else:
            flat.append(value)
    return flat


class StudyBuilder:
    """Fluent builder of :class:`Study` grids.

    Example
    -------
    >>> from repro.analysis.study import Study
    >>> from repro.power.domains import WorkloadType
    >>> study = (
    ...     Study.builder("fig4-style-grid")
    ...     .tdps(4.0, 18.0, 50.0)
    ...     .application_ratios(0.4, 0.6, 0.8)
    ...     .workload_types(WorkloadType.CPU_MULTI_THREAD, WorkloadType.GRAPHICS)
    ...     .build()
    ... )
    >>> len(study.scenarios)
    18
    """

    def __init__(self, name: str = "study"):
        self._name = name
        self._tdps_w: List[float] = []
        self._application_ratios: List[float] = []
        self._workload_types: List[WorkloadType] = []
        self._power_states: List[PackageCState] = []
        self._parameter_grid: List[Dict[str, object]] = []
        self._pdn_names: Optional[List[str]] = None
        self._extra_scenarios: List[Scenario] = []

    # Axis setters ------------------------------------------------------ #
    def tdps(self, *tdps_w: Union[float, Sequence[float]]) -> "StudyBuilder":
        """Add TDP levels (watts) to the grid."""
        self._tdps_w.extend(float(value) for value in _flatten(tdps_w))
        return self

    def application_ratios(
        self, *ratios: Union[float, Sequence[float]]
    ) -> "StudyBuilder":
        """Add application ratios to the active part of the grid."""
        self._application_ratios.extend(float(value) for value in _flatten(ratios))
        return self

    def workload_types(
        self, *types: Union[WorkloadType, str, Sequence[object]]
    ) -> "StudyBuilder":
        """Add workload types (enum members or their string values)."""
        for value in _flatten(types):
            self._workload_types.append(
                value if isinstance(value, WorkloadType) else WorkloadType(value)
            )
        return self

    def power_states(
        self, *states: Union[PackageCState, str, Sequence[object]]
    ) -> "StudyBuilder":
        """Add package power states (C0_MIN..C8) to the idle part of the grid."""
        for value in _flatten(states):
            state = value if isinstance(value, PackageCState) else PackageCState(value)
            if state is PackageCState.C0:
                raise ConfigurationError(
                    "C0 is the active state; use application_ratios/workload_types"
                )
            self._power_states.append(state)
        return self

    def parameter_grid(
        self, *overrides: Mapping[str, object]
    ) -> "StudyBuilder":
        """Cross the grid with technology-parameter override sets.

        Each mapping is applied with
        :meth:`PdnTechnologyParameters.with_overrides` by the evaluating
        :class:`PdnSpot`; pass ``{}`` to keep the unperturbed point in the
        grid alongside the variants.
        """
        self._parameter_grid.extend(dict(override) for override in overrides)
        return self

    def pdns(self, *names: Union[str, Sequence[str]]) -> "StudyBuilder":
        """Restrict the study to the named PDN architectures."""
        if self._pdn_names is None:
            self._pdn_names = []
        self._pdn_names.extend(str(name) for name in _flatten(names))
        return self

    def scenario(self, scenario: Scenario) -> "StudyBuilder":
        """Append an explicit :class:`Scenario` after the generated grid."""
        self._extra_scenarios.append(scenario)
        return self

    # Build ------------------------------------------------------------- #
    def build(self) -> Study:
        """Materialise the grid into an immutable :class:`Study`."""
        if not self._tdps_w:
            if not self._extra_scenarios:
                raise ConfigurationError(
                    f"study {self._name!r} needs at least one TDP (or explicit scenario)"
                )
            if (
                self._application_ratios
                or self._workload_types
                or self._power_states
                or self._parameter_grid
            ):
                # Every generated axis is crossed with the TDP axis; without
                # TDPs the configured axes would be silently dropped.
                raise ConfigurationError(
                    f"study {self._name!r} configures grid axes but no TDPs; "
                    "add .tdps(...) or use explicit scenarios only"
                )
        wants_active = bool(self._application_ratios or self._workload_types) or not (
            self._power_states
        )
        ratios = self._application_ratios or [DEFAULT_APPLICATION_RATIO]
        types = self._workload_types or [DEFAULT_WORKLOAD_TYPE]
        override_grid: List[OverrideKey] = [
            _freeze_overrides(overrides) for overrides in self._parameter_grid
        ] or [()]
        scenarios: List[Scenario] = []
        for overrides in override_grid:
            if wants_active and self._tdps_w:
                for workload_type in types:
                    for tdp_w in self._tdps_w:
                        for ratio in ratios:
                            scenarios.append(
                                Scenario(
                                    tdp_w=tdp_w,
                                    application_ratio=ratio,
                                    workload_type=workload_type,
                                    overrides=overrides,
                                )
                            )
            for tdp_w in self._tdps_w:
                for state in self._power_states:
                    scenarios.append(
                        Scenario(tdp_w=tdp_w, power_state=state, overrides=overrides)
                    )
        scenarios.extend(self._extra_scenarios)
        return Study(
            name=self._name,
            scenarios=tuple(scenarios),
            pdn_names=tuple(self._pdn_names) if self._pdn_names is not None else None,
        )


# ---------------------------------------------------------------------- #
# Plain (instance-based, uncached) study evaluation
# ---------------------------------------------------------------------- #
Evaluator = Callable[[PowerDeliveryNetwork, OperatingConditions], PdnEvaluation]


def scenario_records(
    scenario: Scenario,
    evaluations: Iterable[Tuple[str, PdnEvaluation]],
) -> List[Record]:
    """Flatten one scenario's per-PDN evaluations into sweep-layout records."""
    fields = scenario.record_fields()
    return [
        {
            "pdn": pdn_name,
            **fields,
            "etee": evaluation.etee,
            "supply_power_w": evaluation.supply_power_w,
            "nominal_power_w": evaluation.nominal_power_w,
        }
        for pdn_name, evaluation in evaluations
    ]


def evaluate_study(
    study: Study,
    pdns: Union[Mapping[str, PowerDeliveryNetwork], Iterable[PowerDeliveryNetwork]],
    evaluate: Optional[Evaluator] = None,
) -> ResultSet:
    """Evaluate ``study`` against concrete PDN instances.

    This is the engine behind the legacy ``sweep_*`` shims and the validation
    grid: it has no memo cache and no parameter-override support (overrides
    need a :class:`PdnSpot`, which owns the parameter set and can rebuild its
    models -- use :meth:`PdnSpot.run`).

    Parameters
    ----------
    study:
        The scenario grid to evaluate.
    pdns:
        The PDN models, either as a ``name -> instance`` mapping or as an
        iterable of instances (keyed by their ``name`` attribute).
    evaluate:
        Optional evaluation hook ``(pdn, conditions) -> PdnEvaluation``;
        defaults to calling ``pdn.evaluate`` directly.
    """
    if isinstance(pdns, Mapping):
        items: List[Tuple[str, PowerDeliveryNetwork]] = list(pdns.items())
    else:
        # Preserve duplicates and order: legacy sweep callers may pass several
        # same-named instances (e.g. nominal vs perturbed parameters) and
        # expect one record per instance.
        items = [(pdn.name, pdn) for pdn in pdns]
    if study.pdn_names is not None:
        provided = {name for name, _ in items}
        missing = [name for name in study.pdn_names if name not in provided]
        if missing:
            raise ConfigurationError(
                f"study {study.name!r} needs PDNs not provided: {', '.join(missing)}"
            )
        by_name = {}
        for name, pdn in items:
            by_name.setdefault(name, pdn)
        items = [(name, by_name[name]) for name in study.pdn_names]
    if evaluate is None:
        evaluate = evaluate_pdn
    records: List[Record] = []
    for scenario in study.scenarios:
        if scenario.overrides:
            raise ModelDomainError(
                "parameter-override scenarios need a PdnSpot engine; "
                "use PdnSpot.run(study)"
            )
        conditions = scenario.conditions()
        records.extend(
            scenario_records(
                scenario,
                ((name, evaluate(pdn, conditions)) for name, pdn in items),
            )
        )
    return ResultSet.from_records(records, name=study.name)
