"""Plain-text table rendering.

The benchmark harness and the examples print their results as aligned text
tables (the library has no plotting dependency); this module contains the one
formatting helper they share.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Union

Cell = Union[str, float, int]


def _format_cell(value: Cell, float_format: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    float_format: str = ".3f",
    title: str = "",
) -> str:
    """Render ``rows`` as an aligned plain-text table.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Row values; floats are formatted with ``float_format``.
    float_format:
        Format spec applied to float cells.
    title:
        Optional title printed above the table.
    """
    formatted_rows = [
        [_format_cell(cell, float_format) for cell in row] for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(header.ljust(width) for header, width in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in formatted_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_mapping_table(
    mapping: Mapping[str, Mapping[str, Cell]],
    row_key_header: str = "row",
    float_format: str = ".3f",
    title: str = "",
) -> str:
    """Render a nested mapping (row -> column -> value) as a table."""
    columns: list = []
    for row_values in mapping.values():
        for column in row_values:
            if column not in columns:
                columns.append(column)
    headers = [row_key_header] + list(columns)
    rows = []
    for row_key, row_values in mapping.items():
        rows.append([row_key] + [row_values.get(column, "") for column in columns])
    return format_table(headers, rows, float_format=float_format, title=title)
