"""The PDNspot facade.

:class:`PdnSpot` is the single entry point most users need: it owns a set of
PDN models built from one technology-parameter set and exposes the paper's
analyses as methods -- ETEE evaluation and comparison, declarative
:class:`~repro.analysis.study.Study` execution (:meth:`PdnSpot.run`),
TDP/AR/power-state sweeps, performance comparison against a baseline PDN,
battery-life power, BOM and board-area comparison.

Every evaluation is routed through a keyed memo cache over
``(parameter overrides, pdn name, operating conditions)``, so the repeated
grid points that dominate figure regeneration are computed once; see
:meth:`PdnSpot.cache_info`.

Example
-------
>>> from repro import PdnSpot
>>> spot = PdnSpot()
>>> etee = spot.compare_etee(tdp_w=4.0)  # evaluate once, compare many times
>>> etee["FlexWatts"] > etee["IVR"]
True
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.executor import (
    EvalUnit,
    ExecutorLike,
    SerialExecutor,
    TwoTierCacheMixin,
    WorkerConfig,
    make_executor,
)
from repro.cache import DiskCache, DiskCacheLike, parameters_fingerprint, resolve_disk_cache
from repro.analysis.resultset import Record, ResultSet
from repro.obs import trace as obs_trace
from repro.obs.metrics import METRICS
from repro.obs.runstats import RunStats, executor_label
from repro.analysis.study import (
    OverrideKey,
    Study,
    scenario_records,
)
from repro.cost.board_area import BoardAreaModel
from repro.cost.bom import BomModel
from repro.pdn import columnar as columnar_core
from repro.pdn.base import (
    OperatingConditions,
    PdnEvaluation,
    PowerDeliveryNetwork,
    conditions_key,
)
from repro.pdn.registry import available_pdns, build_pdn
from repro.perf.model import PerformanceModel, PerformanceResult
from repro.power.domains import WorkloadType
from repro.power.parameters import PdnTechnologyParameters, default_parameters
from repro.power.power_states import PackageCState
from repro.util.errors import ConfigurationError
from repro.workloads.base import Benchmark
from repro.workloads.battery_life import BATTERY_LIFE_WORKLOADS


@dataclass(frozen=True)
class CacheInfo:
    """Hit/miss statistics of a :class:`PdnSpot` evaluation cache."""

    hits: int
    misses: int
    size: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


# Columnar-dispatch instruments, bound once at import time.  They tick in
# whichever process runs the block (the parent for serial/thread backends;
# worker-side ticks are process-local and intentionally not merged -- the
# parent's executor-level counters already cover dispatched units).
_COLUMNAR_BLOCKS = METRICS.counter("engine.columnar.blocks")
_COLUMNAR_BLOCK_UNITS = METRICS.counter("engine.columnar.block_units")
_SCALAR_FALLBACK_BLOCKS = METRICS.counter("engine.scalar_fallback.blocks")
_SCALAR_FALLBACK_UNITS = METRICS.counter("engine.scalar_fallback.units")


def _copy_evaluation(evaluation: PdnEvaluation) -> PdnEvaluation:
    """A caller-owned copy of a cached evaluation.

    ``PdnEvaluation`` is frozen but its ``breakdown`` (built by mutation
    inside the PDN models) and ``rail_voltages_v`` are not; handing the cached
    master to callers would let one caller's mutation corrupt every later
    cache hit.
    """
    breakdown = replace(
        evaluation.breakdown, rail_details=dict(evaluation.breakdown.rail_details)
    )
    return replace(
        evaluation,
        breakdown=breakdown,
        rail_voltages_v=dict(evaluation.rail_voltages_v),
    )


# Backwards-compatible alias: the key helper moved to repro.pdn.base so the
# interval simulator's phase cache can share it without importing analysis.
_conditions_key = conditions_key


class PdnSpot(TwoTierCacheMixin):
    """Multi-dimensional PDN exploration framework (the paper's PDNspot).

    Parameters
    ----------
    parameters:
        Technology parameters shared by every PDN model (Table 2 defaults).
    pdn_names:
        Which PDN architectures to instantiate; defaults to all five.
    baseline_name:
        The PDN used for normalisation (IVR, the state of the art).
    enable_cache:
        Whether evaluations are memoised over ``(overrides, pdn, conditions)``.
        Disabling reproduces the pre-cache evaluation cost (used by the
        benchmark harness to track the cache's speedup); results are
        identical either way because the PDN models are pure.
    disk_cache:
        Optional second cache tier: a cache-directory path (a
        :class:`~repro.cache.DiskCache` is built for it, keyed by this
        engine's parameters fingerprint) or a pre-built store.  Memory
        misses fall through to disk, computed evaluations write through, so
        a directory warmed by one process serves identical runs in any
        later process.  Requires ``enable_cache=True``.
    columnar:
        Whether batches may be evaluated through the vectorized columnar
        core (:mod:`repro.pdn.columnar`) instead of one Python call per
        point.  Results are bit-identical either way (the per-point path is
        the reference oracle gating the columnar kernels); disabling
        reproduces the per-point evaluation cost, which the ``vectorized-
        eval`` benchmarks compare against.  Requires NumPy; without it the
        flag silently degrades to per-point evaluation.
    """

    def __init__(
        self,
        parameters: Optional[PdnTechnologyParameters] = None,
        pdn_names: Optional[Sequence[str]] = None,
        baseline_name: str = "IVR",
        enable_cache: bool = True,
        disk_cache: DiskCacheLike = None,
        columnar: bool = True,
    ):
        self.parameters = parameters if parameters is not None else default_parameters()
        names = list(pdn_names) if pdn_names is not None else available_pdns()
        if baseline_name not in names:
            raise ConfigurationError(
                f"baseline PDN {baseline_name!r} must be among the instantiated PDNs"
            )
        self._pdns: Dict[str, PowerDeliveryNetwork] = {
            name: build_pdn(name, self.parameters) for name in names
        }
        self._baseline_name = baseline_name
        self._performance_model = PerformanceModel(
            self._pdns[baseline_name], evaluator=self._evaluate_instance
        )
        self._bom_model = BomModel()
        self._area_model = BoardAreaModel()
        self._cache_enabled = enable_cache
        self._cache: Dict[Tuple[object, ...], PdnEvaluation] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        # Guards the cache mapping, its hit/miss counters and the variant
        # table: concurrent evaluate_cached calls (ThreadExecutor workers or
        # user threads) must not lose counter updates or race dict growth.
        self._cache_lock = threading.Lock()
        if disk_cache is not None and not enable_cache:
            raise ConfigurationError(
                "disk_cache requires enable_cache=True: the disk tier sits "
                "behind the memo cache"
            )
        self._disk_cache = resolve_disk_cache(
            disk_cache,
            namespace="pdnspot",
            fingerprint=parameters_fingerprint(self.parameters),
        )
        self._columnar = bool(columnar) and columnar_core.HAVE_NUMPY
        #: Parameter-override PDN variants, keyed by (overrides, pdn name).
        self._variants: Dict[Tuple[OverrideKey, str], PowerDeliveryNetwork] = {}

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def pdns(self) -> Dict[str, PowerDeliveryNetwork]:
        """The instantiated PDN models, keyed by name."""
        return dict(self._pdns)

    @property
    def baseline(self) -> PowerDeliveryNetwork:
        """The baseline PDN used for normalisation."""
        return self._pdns[self._baseline_name]

    def pdn(self, name: str) -> PowerDeliveryNetwork:
        """Return one PDN model by name."""
        if name not in self._pdns:
            raise ConfigurationError(
                f"PDN {name!r} is not instantiated; available: {', '.join(self._pdns)}"
            )
        return self._pdns[name]

    # ------------------------------------------------------------------ #
    # Cached evaluation engine
    # ------------------------------------------------------------------ #
    @property
    def cache_enabled(self) -> bool:
        """Whether evaluations are memoised (fixed at construction)."""
        return self._cache_enabled

    def cache_info(self) -> CacheInfo:
        """Hit/miss statistics of the evaluation cache."""
        with self._cache_lock:
            return CacheInfo(
                hits=self._cache_hits, misses=self._cache_misses, size=len(self._cache)
            )

    def clear_cache(self) -> None:
        """Drop every memoised evaluation (statistics reset too).

        Only the in-memory tier is cleared; an attached disk store survives
        (use :meth:`DiskCache.prune` to reclaim it) and will serve the next
        lookups.
        """
        with self._cache_lock:
            self._cache.clear()
            self._cache_hits = 0
            self._cache_misses = 0

    def cache_key(
        self,
        pdn_name: str,
        conditions: OperatingConditions,
        overrides: OverrideKey = (),
    ) -> Tuple[object, ...]:
        """The memo-cache key of one evaluation unit."""
        return (overrides, pdn_name, _conditions_key(conditions))

    @property
    def disk_cache(self) -> Optional[DiskCache]:
        """The attached on-disk store (second cache tier), if any."""
        return self._disk_cache

    # Two-tier cache_lookup / cache_install come from TwoTierCacheMixin.
    _payload_type = PdnEvaluation
    _copy_cached = staticmethod(_copy_evaluation)

    def _variant_pdn(self, name: str, overrides: OverrideKey) -> PowerDeliveryNetwork:
        """The PDN instance for one parameter-override set (built once)."""
        if not overrides:
            return self.pdn(name)
        self.pdn(name)  # validate the name against the instantiated set
        key = (overrides, name)
        with self._cache_lock:
            variant = self._variants.get(key)
        if variant is not None:
            return variant
        parameters = self.parameters.with_overrides(**dict(overrides))
        variant = build_pdn(name, parameters)
        with self._cache_lock:
            # Two racing builders produce equivalent models; first one wins.
            return self._variants.setdefault(key, variant)

    def evaluate_uncached(
        self,
        pdn_name: str,
        conditions: OperatingConditions,
        overrides: OverrideKey = (),
    ) -> PdnEvaluation:
        """Evaluate one PDN at one operating point, bypassing the memo cache.

        The :class:`~repro.analysis.executor.EvaluationEngine` protocol's
        single-unit compute seam (the reference oracle the columnar path is
        gated against); executor workers call it for every unit that does not
        ride :meth:`evaluate_columns`.  The driver owns the cache interaction
        (:meth:`cache_lookup` / :meth:`cache_install`), so neither the
        mapping nor the counters are touched here.  Not public sugar -- use
        :meth:`evaluate` or :meth:`evaluate_units`.
        """
        return self._variant_pdn(pdn_name, overrides).evaluate(conditions)

    def _evaluate_cached(
        self,
        pdn_name: str,
        conditions: OperatingConditions,
        overrides: OverrideKey = (),
    ) -> PdnEvaluation:
        """Evaluate one PDN at one operating point through the memo cache."""
        if not self._cache_enabled:
            return self.evaluate_uncached(pdn_name, conditions, overrides)
        key = self.cache_key(pdn_name, conditions, overrides)
        cached = self.cache_lookup(key)
        if cached is not None:
            return cached
        evaluation = self.evaluate_uncached(pdn_name, conditions, overrides)
        return self.cache_install(key, evaluation)

    def evaluate_cached(
        self,
        pdn_name: str,
        conditions: OperatingConditions,
        overrides: OverrideKey = (),
    ) -> PdnEvaluation:
        """Thin alias of :meth:`evaluate` (the historical spelling).

        Retained so pre-consolidation callers keep working; new code should
        call :meth:`evaluate` for one point or :meth:`evaluate_units` for a
        batch.
        """
        return self._evaluate_cached(pdn_name, conditions, overrides)

    # ------------------------------------------------------------------ #
    # Columnar capability (the vectorized half of the engine protocol)
    # ------------------------------------------------------------------ #

    #: Instance-level replacements of any of these mark a patched engine
    #: (tests gate concurrency or inject failures by swapping them); a
    #: patched engine declines columnar batches so every unit flows through
    #: the patched seam.
    _ENGINE_PATCHABLE = ("evaluate_uncached", "_evaluate_cached", "evaluate_cached", "evaluate")

    @property
    def columnar_enabled(self) -> bool:
        """Whether batches may take the vectorized columnar path."""
        return self._columnar

    def evaluate_columns(
        self, units: Sequence[EvalUnit]
    ) -> Optional[List[PdnEvaluation]]:
        """Evaluate a batch of units through the vectorized columnar core.

        Units are grouped into ``(pdn name, overrides)`` column blocks and
        each block is computed in one NumPy pass per metric
        (:func:`repro.pdn.columnar.evaluate_columns`); the column layout is
        shared between blocks over the same conditions, so a five-PDN study
        grid builds its :class:`~repro.pdn.columnar.ConditionsBatch` once.
        Results are returned in unit order and are bit-identical to
        :meth:`evaluate_uncached` per unit.

        A block whose model declines columnarisation (patched instance, an
        operating point the scalar model would reject with a precise error)
        silently falls back to the per-point oracle for that block only.
        Returns ``None`` -- declining the whole batch -- when the columnar
        path is disabled or this engine instance itself is patched.
        """
        if not self._columnar:
            return None
        if any(name in self.__dict__ for name in self._ENGINE_PATCHABLE):
            return None
        unit_list = list(units)
        if not unit_list:
            return []
        groups: Dict[Tuple[str, OverrideKey], List[int]] = {}
        for index, (name, _, overrides) in enumerate(unit_list):
            groups.setdefault((name, overrides), []).append(index)
        results: List[Optional[PdnEvaluation]] = [None] * len(unit_list)
        # One ConditionsBatch per distinct conditions sequence: study grids
        # evaluate every PDN over the same points, so the column layout is
        # built once and shared by all five blocks.  Identity keys are safe
        # here -- the conditions objects are pinned by unit_list for the
        # whole call.
        batches: Dict[Tuple[int, ...], Optional[columnar_core.ConditionsBatch]] = {}
        for (name, overrides), indices in groups.items():
            conditions = [unit_list[i][1] for i in indices]
            layout_key = tuple(map(id, conditions))
            if layout_key in batches:
                batch = batches[layout_key]
            else:
                batch = columnar_core.ConditionsBatch.from_conditions(conditions)
                batches[layout_key] = batch
            with obs_trace.span("engine.columnar_block", category="engine",
                                pdn=name, units=len(indices)) as block_span:
                evaluations = None
                reason: Optional[str] = None
                if batch is not None:
                    pdn = self._variant_pdn(name, overrides)
                    evaluations = columnar_core.evaluate_columns(
                        pdn, conditions, batch=batch
                    )
                    if evaluations is None:
                        reason = "model_declined"
                else:
                    reason = "batch_unbuildable"
                if evaluations is None:
                    _SCALAR_FALLBACK_BLOCKS.inc()
                    _SCALAR_FALLBACK_UNITS.inc(len(indices))
                    block_span.set("columnar", False)
                    block_span.set("fallback_reason", reason)
                    obs_trace.instant(
                        "engine.scalar_fallback", category="engine",
                        pdn=name, units=len(indices), reason=reason,
                    )
                    evaluations = [
                        self.evaluate_uncached(name, c, overrides)
                        for c in conditions
                    ]
                else:
                    _COLUMNAR_BLOCKS.inc()
                    _COLUMNAR_BLOCK_UNITS.inc(len(indices))
                    block_span.set("columnar", True)
            for index, evaluation in zip(indices, evaluations):
                results[index] = evaluation
        return results

    def worker_config(self) -> WorkerConfig:
        """The picklable recipe process-pool workers rebuild this engine from."""
        return WorkerConfig(
            parameters=self.parameters,
            pdn_names=tuple(self._pdns),
            baseline_name=self._baseline_name,
            columnar=self._columnar,
        )

    def prime_for_execution(self, units: Iterable[EvalUnit]) -> None:
        """Build every model (and lazy predictor) the units need, up front.

        Thread-pool workers treat the PDN models as read-only; the two pieces
        of lazily built state -- parameter-override variants and the FlexWatts
        Algorithm-1 predictor calibration -- are forced here, on the calling
        thread, before any worker runs.
        """
        seen = set()
        for name, _, overrides in units:
            key = (overrides, name)
            if key in seen:
                continue
            seen.add(key)
            pdn = self._variant_pdn(name, overrides)
            # Touching .predictor forces the lazy Algorithm-1 calibration on
            # hybrid PDNs; static PDNs have no such attribute.
            getattr(pdn, "predictor", None)

    def _evaluate_instance(
        self, pdn: PowerDeliveryNetwork, conditions: OperatingConditions
    ) -> PdnEvaluation:
        """Cached evaluator for collaborators that hold PDN instances."""
        if pdn is self._pdns.get(pdn.name):
            return self._evaluate_cached(pdn.name, conditions)
        return pdn.evaluate(conditions)

    def evaluate_units(
        self,
        units: Iterable[EvalUnit],
        executor: ExecutorLike = None,
        jobs: Optional[int] = None,
    ) -> List[PdnEvaluation]:
        """Evaluate ``(pdn_name, conditions, overrides)`` units, in order.

        **The** public batch entry point: every grid workload (studies,
        figure drivers, the optimizer, the evaluation service) reduces to
        this call.  With the default ``executor=None`` (and ``jobs`` unset
        or 1) the units run on the calling thread -- through the vectorized
        columnar core when this engine has it enabled, per point otherwise
        -- with the seed's bit-identical results and cache accounting.
        Otherwise the resolved :class:`~repro.analysis.executor.Executor`
        shards the units into column blocks, evaluates chunks concurrently,
        merges worker results back into this engine's cache and returns the
        evaluations in canonical unit order.
        """
        backend = make_executor(executor, jobs=jobs)
        if backend is None:
            if self._columnar:
                if not self._cache_enabled:
                    # No cache accounting to preserve: hand the whole batch
                    # to the columnar core directly (it falls back to the
                    # per-point oracle per block, or declines entirely when
                    # this engine instance is patched).
                    unit_list = list(units)
                    evaluations = self.evaluate_columns(unit_list)
                    if evaluations is not None:
                        return evaluations
                    return [
                        self.evaluate_uncached(name, conditions, overrides)
                        for name, conditions, overrides in unit_list
                    ]
                # The serial drive preserves per-unit cache accounting
                # exactly while letting whole column blocks ride the
                # vectorized path (one chunk, no pool, no pickling).
                return SerialExecutor(jobs=1).evaluate_units(self, units)
            return [
                self._evaluate_cached(name, conditions, overrides)
                for name, conditions, overrides in units
            ]
        return backend.evaluate_units(self, units)

    def evaluate_batch(
        self,
        points: Iterable[Tuple[str, OperatingConditions]],
        executor: ExecutorLike = None,
        jobs: Optional[int] = None,
    ) -> List[PdnEvaluation]:
        """Thin alias of :meth:`evaluate_units` for override-free points.

        Wraps each ``(pdn_name, conditions)`` pair as a unit with empty
        overrides and delegates; duplicate points -- which dominate
        figure-regeneration grids -- are computed once and served from the
        cache afterwards.
        """
        return self.evaluate_units(
            ((name, conditions, ()) for name, conditions in points),
            executor=executor,
            jobs=jobs,
        )

    def run(
        self,
        study: Study,
        executor: ExecutorLike = None,
        jobs: Optional[int] = None,
    ) -> ResultSet:
        """Execute a declarative :class:`Study` and return its results.

        Scenarios are evaluated in grid order against every instantiated PDN
        (or the study's ``pdn_names`` restriction); parameter-override
        scenarios evaluate against variant models built from
        ``self.parameters.with_overrides(...)``.  All evaluations go through
        the memo cache, so overlapping studies share work.

        Parameters
        ----------
        study:
            The scenario grid to evaluate.
        executor:
            ``None`` (serial, the default), a backend name (``"serial"``,
            ``"thread"``, ``"process"``) or an
            :class:`~repro.analysis.executor.Executor` instance.  Parallel
            backends shard the grid, evaluate chunks concurrently, merge the
            evaluations back into this engine's cache, and reassemble the
            result set in canonical grid order -- the returned
            :class:`ResultSet` is identical to the serial one.
        jobs:
            Worker count for the parallel backends; ``jobs > 1`` with
            ``executor=None`` selects the process backend.
        """
        started = time.perf_counter()
        before = self.cache_info()
        names = study.pdn_names if study.pdn_names is not None else tuple(self._pdns)
        for name in names:
            self.pdn(name)  # fail fast on unknown PDNs
        units: List[EvalUnit] = []
        for scenario in study.scenarios:
            conditions = scenario.conditions()
            units.extend((name, conditions, scenario.overrides) for name in names)
        with obs_trace.span("engine.run", category="engine",
                            study=study.name, units=len(units)):
            evaluations = self.evaluate_units(units, executor=executor, jobs=jobs)
        records: List[Record] = []
        cursor = 0
        for scenario in study.scenarios:
            paired = list(zip(names, evaluations[cursor : cursor + len(names)]))
            cursor += len(names)
            records.extend(scenario_records(scenario, paired))
        results = ResultSet.from_records(records, name=study.name)
        after = self.cache_info()
        results.run_stats = RunStats(
            units=len(units),
            duration_s=time.perf_counter() - started,
            cache_hits=after.hits - before.hits,
            cache_misses=after.misses - before.misses,
            executor=executor_label(make_executor(executor, jobs=jobs)),
        )
        return results

    # ------------------------------------------------------------------ #
    # ETEE evaluation
    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        pdn_name: str,
        conditions: OperatingConditions,
        overrides: OverrideKey = (),
    ) -> PdnEvaluation:
        """Evaluate one PDN at an explicit operating point (cached).

        The public single-point entry; for many points use
        :meth:`evaluate_units`, which can evaluate whole batches in one
        vectorized pass.
        """
        return self._evaluate_cached(pdn_name, conditions, overrides)

    def compare_etee(
        self,
        tdp_w: float,
        application_ratio: float = 0.56,
        workload_type: WorkloadType = WorkloadType.CPU_MULTI_THREAD,
    ) -> Dict[str, float]:
        """ETEE of every instantiated PDN at one active operating point."""
        conditions = OperatingConditions.for_active_workload(
            tdp_w, application_ratio, workload_type
        )
        return {
            name: self._evaluate_cached(name, conditions).etee for name in self._pdns
        }

    def compare_power_state_etee(
        self, tdp_w: float, power_state: PackageCState
    ) -> Dict[str, float]:
        """ETEE of every instantiated PDN in one package power state."""
        conditions = OperatingConditions.for_power_state(tdp_w, power_state)
        return {
            name: self._evaluate_cached(name, conditions).etee for name in self._pdns
        }

    # ------------------------------------------------------------------ #
    # Sweeps (thin wrappers over the Study engine)
    # ------------------------------------------------------------------ #
    def tdp_sweep(
        self,
        tdps_w: Sequence[float],
        application_ratio: float = 0.56,
        workload_type: WorkloadType = WorkloadType.CPU_MULTI_THREAD,
    ) -> List[Record]:
        """ETEE sweep over TDP for every instantiated PDN."""
        return self.run(
            Study.over_tdps(tdps_w, application_ratio, workload_type)
        ).to_records()

    def application_ratio_sweep(
        self,
        application_ratios: Sequence[float],
        tdp_w: float,
        workload_type: WorkloadType = WorkloadType.CPU_MULTI_THREAD,
    ) -> List[Record]:
        """ETEE sweep over application ratio for every instantiated PDN."""
        return self.run(
            Study.over_application_ratios(application_ratios, tdp_w, workload_type)
        ).to_records()

    def power_state_sweep(self, tdp_w: float) -> List[Record]:
        """ETEE sweep over the battery-life power states."""
        return self.run(Study.over_power_states(tdp_w)).to_records()

    # ------------------------------------------------------------------ #
    # Performance, battery life, cost, area
    # ------------------------------------------------------------------ #
    def performance(
        self, pdn_name: str, benchmark: Benchmark, tdp_w: float
    ) -> PerformanceResult:
        """Relative performance of a benchmark on one PDN (baseline-normalised)."""
        return self._performance_model.evaluate(self.pdn(pdn_name), benchmark, tdp_w)

    def compare_performance(
        self, benchmarks: Iterable[Benchmark], tdp_w: float
    ) -> Dict[str, float]:
        """Suite-average relative performance of every PDN at one TDP."""
        return self._performance_model.compare_pdns(
            self._pdns.values(), benchmarks, tdp_w
        )

    def compare_battery_life_power(self, tdp_w: float = 18.0) -> Dict[str, Dict[str, float]]:
        """Average power of the four battery-life workloads on every PDN.

        Returns workload name -> PDN name -> average supply power (watts).
        """
        table: Dict[str, Dict[str, float]] = {}
        for workload in BATTERY_LIFE_WORKLOADS:
            table[workload.name] = {
                name: workload.average_power_w(
                    pdn, tdp_w, evaluate=self._evaluate_instance
                )
                for name, pdn in self._pdns.items()
            }
        return table

    def compare_bom(self, tdp_w: float) -> Dict[str, float]:
        """Normalised BOM of every PDN at one TDP (Fig. 8d)."""
        return self._bom_model.compare(
            self._pdns.values(), tdp_w, reference_name=self._baseline_name
        )

    def compare_board_area(self, tdp_w: float) -> Dict[str, float]:
        """Normalised board area of every PDN at one TDP (Fig. 8e)."""
        return self._area_model.compare(
            self._pdns.values(), tdp_w, reference_name=self._baseline_name
        )
