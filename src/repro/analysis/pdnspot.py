"""The PDNspot facade.

:class:`PdnSpot` is the single entry point most users need: it owns a set of
PDN models built from one technology-parameter set and exposes the paper's
analyses as methods -- ETEE evaluation and comparison, TDP/AR/power-state
sweeps, performance comparison against a baseline PDN, battery-life power,
BOM and board-area comparison.

Example
-------
>>> from repro import PdnSpot
>>> spot = PdnSpot()
>>> spot.compare_etee(tdp_w=4.0)["FlexWatts"] > spot.compare_etee(tdp_w=4.0)["IVR"]
True
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.sweep import (
    Record,
    sweep_application_ratio,
    sweep_power_states,
    sweep_tdp,
)
from repro.cost.board_area import BoardAreaModel
from repro.cost.bom import BomModel
from repro.pdn.base import OperatingConditions, PdnEvaluation, PowerDeliveryNetwork
from repro.pdn.registry import available_pdns, build_pdn
from repro.perf.model import PerformanceModel, PerformanceResult
from repro.power.domains import WorkloadType
from repro.power.parameters import PdnTechnologyParameters, default_parameters
from repro.power.power_states import PackageCState
from repro.util.errors import ConfigurationError
from repro.workloads.base import Benchmark
from repro.workloads.battery_life import BATTERY_LIFE_WORKLOADS


class PdnSpot:
    """Multi-dimensional PDN exploration framework (the paper's PDNspot).

    Parameters
    ----------
    parameters:
        Technology parameters shared by every PDN model (Table 2 defaults).
    pdn_names:
        Which PDN architectures to instantiate; defaults to all five.
    baseline_name:
        The PDN used for normalisation (IVR, the state of the art).
    """

    def __init__(
        self,
        parameters: Optional[PdnTechnologyParameters] = None,
        pdn_names: Optional[Sequence[str]] = None,
        baseline_name: str = "IVR",
    ):
        self.parameters = parameters if parameters is not None else default_parameters()
        names = list(pdn_names) if pdn_names is not None else available_pdns()
        if baseline_name not in names:
            raise ConfigurationError(
                f"baseline PDN {baseline_name!r} must be among the instantiated PDNs"
            )
        self._pdns: Dict[str, PowerDeliveryNetwork] = {
            name: build_pdn(name, self.parameters) for name in names
        }
        self._baseline_name = baseline_name
        self._performance_model = PerformanceModel(self._pdns[baseline_name])
        self._bom_model = BomModel()
        self._area_model = BoardAreaModel()

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def pdns(self) -> Dict[str, PowerDeliveryNetwork]:
        """The instantiated PDN models, keyed by name."""
        return dict(self._pdns)

    @property
    def baseline(self) -> PowerDeliveryNetwork:
        """The baseline PDN used for normalisation."""
        return self._pdns[self._baseline_name]

    def pdn(self, name: str) -> PowerDeliveryNetwork:
        """Return one PDN model by name."""
        if name not in self._pdns:
            raise ConfigurationError(
                f"PDN {name!r} is not instantiated; available: {', '.join(self._pdns)}"
            )
        return self._pdns[name]

    # ------------------------------------------------------------------ #
    # ETEE evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, pdn_name: str, conditions: OperatingConditions) -> PdnEvaluation:
        """Evaluate one PDN at an explicit operating point."""
        return self.pdn(pdn_name).evaluate(conditions)

    def compare_etee(
        self,
        tdp_w: float,
        application_ratio: float = 0.56,
        workload_type: WorkloadType = WorkloadType.CPU_MULTI_THREAD,
    ) -> Dict[str, float]:
        """ETEE of every instantiated PDN at one active operating point."""
        conditions = OperatingConditions.for_active_workload(
            tdp_w, application_ratio, workload_type
        )
        return {name: pdn.evaluate(conditions).etee for name, pdn in self._pdns.items()}

    def compare_power_state_etee(
        self, tdp_w: float, power_state: PackageCState
    ) -> Dict[str, float]:
        """ETEE of every instantiated PDN in one package power state."""
        conditions = OperatingConditions.for_power_state(tdp_w, power_state)
        return {name: pdn.evaluate(conditions).etee for name, pdn in self._pdns.items()}

    # ------------------------------------------------------------------ #
    # Sweeps
    # ------------------------------------------------------------------ #
    def tdp_sweep(
        self,
        tdps_w: Sequence[float],
        application_ratio: float = 0.56,
        workload_type: WorkloadType = WorkloadType.CPU_MULTI_THREAD,
    ) -> List[Record]:
        """ETEE sweep over TDP for every instantiated PDN."""
        return sweep_tdp(self._pdns.values(), tdps_w, application_ratio, workload_type)

    def application_ratio_sweep(
        self,
        application_ratios: Sequence[float],
        tdp_w: float,
        workload_type: WorkloadType = WorkloadType.CPU_MULTI_THREAD,
    ) -> List[Record]:
        """ETEE sweep over application ratio for every instantiated PDN."""
        return sweep_application_ratio(
            self._pdns.values(), application_ratios, tdp_w, workload_type
        )

    def power_state_sweep(self, tdp_w: float) -> List[Record]:
        """ETEE sweep over the battery-life power states."""
        return sweep_power_states(self._pdns.values(), tdp_w)

    # ------------------------------------------------------------------ #
    # Performance, battery life, cost, area
    # ------------------------------------------------------------------ #
    def performance(
        self, pdn_name: str, benchmark: Benchmark, tdp_w: float
    ) -> PerformanceResult:
        """Relative performance of a benchmark on one PDN (baseline-normalised)."""
        return self._performance_model.evaluate(self.pdn(pdn_name), benchmark, tdp_w)

    def compare_performance(
        self, benchmarks: Iterable[Benchmark], tdp_w: float
    ) -> Dict[str, float]:
        """Suite-average relative performance of every PDN at one TDP."""
        return self._performance_model.compare_pdns(
            self._pdns.values(), benchmarks, tdp_w
        )

    def compare_battery_life_power(self, tdp_w: float = 18.0) -> Dict[str, Dict[str, float]]:
        """Average power of the four battery-life workloads on every PDN.

        Returns workload name -> PDN name -> average supply power (watts).
        """
        table: Dict[str, Dict[str, float]] = {}
        for workload in BATTERY_LIFE_WORKLOADS:
            table[workload.name] = {
                name: workload.average_power_w(pdn, tdp_w)
                for name, pdn in self._pdns.items()
            }
        return table

    def compare_bom(self, tdp_w: float) -> Dict[str, float]:
        """Normalised BOM of every PDN at one TDP (Fig. 8d)."""
        return self._bom_model.compare(
            self._pdns.values(), tdp_w, reference_name=self._baseline_name
        )

    def compare_board_area(self, tdp_w: float) -> Dict[str, float]:
        """Normalised board area of every PDN at one TDP (Fig. 8e)."""
        return self._area_model.compare(
            self._pdns.values(), tdp_w, reference_name=self._baseline_name
        )
