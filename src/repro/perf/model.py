"""The PDNspot performance model (Sec. 3.3).

The model estimates how a PDN's end-to-end efficiency translates into workload
performance.  For a compute-bound workload at a fixed TDP:

1. the PDN's ETEE determines how much nominal power remains for the compute
   domains after the fixed SA/IO/LLC allocations and the PDN loss,
2. the frequency-sensitivity curve (Fig. 2a) converts any *extra* compute
   budget -- relative to the baseline PDN -- into a frequency increase, and
3. the workload's performance scalability converts the frequency increase into
   a performance increase.

Performance is reported relative to a baseline PDN (the paper normalises to
the IVR PDN at 100 %), which is also how Fig. 7 and Fig. 8(a)-(b) are drawn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.pdn.base import (
    OperatingConditions,
    PdnEvaluation,
    PowerDeliveryNetwork,
    evaluate_pdn,
)
from repro.perf.frequency_sensitivity import FrequencySensitivityModel
from repro.power.budget import PowerBudgetManager
from repro.power.domains import DomainKind, WorkloadType
from repro.util.errors import ModelDomainError
from repro.util.validation import require_positive
from repro.workloads.base import Benchmark


@dataclass(frozen=True)
class PerformanceResult:
    """Relative performance of one benchmark on one PDN at one TDP."""

    pdn_name: str
    benchmark_name: str
    tdp_w: float
    etee: float
    compute_budget_w: float
    frequency_delta_fraction: float
    relative_performance: float

    @property
    def relative_performance_percent(self) -> float:
        """Relative performance in percent (the axis used by Fig. 7 / Fig. 8)."""
        return self.relative_performance * 100.0


class PerformanceModel:
    """Estimates PDN-relative performance for compute-bound workloads."""

    def __init__(
        self,
        baseline_pdn: PowerDeliveryNetwork,
        budget_manager: Optional[PowerBudgetManager] = None,
        sensitivity: Optional[FrequencySensitivityModel] = None,
        evaluator: Optional[
            Callable[[PowerDeliveryNetwork, OperatingConditions], PdnEvaluation]
        ] = None,
    ):
        self._baseline = baseline_pdn
        self._budget = budget_manager if budget_manager is not None else PowerBudgetManager()
        self._sensitivity = (
            sensitivity if sensitivity is not None else FrequencySensitivityModel()
        )
        # The evaluation hook lets PdnSpot route every (pdn, conditions) point
        # through its memo cache; the baseline is otherwise re-evaluated at
        # the same conditions for every candidate PDN in a comparison.
        self._evaluate_pdn = evaluator if evaluator is not None else evaluate_pdn

    @property
    def baseline_pdn(self) -> PowerDeliveryNetwork:
        """The PDN performance is normalised against (IVR in the paper)."""
        return self._baseline

    # ------------------------------------------------------------------ #
    # Single-benchmark evaluation
    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        pdn: PowerDeliveryNetwork,
        benchmark: Benchmark,
        tdp_w: float,
    ) -> PerformanceResult:
        """Relative performance of ``benchmark`` on ``pdn`` at ``tdp_w``."""
        require_positive(tdp_w, "tdp_w")
        if benchmark.workload_type is WorkloadType.IDLE:
            raise ModelDomainError("the performance model only applies to active workloads")
        conditions = OperatingConditions.for_active_workload(
            tdp_w=tdp_w,
            application_ratio=benchmark.application_ratio,
            workload_type=benchmark.workload_type,
        )
        candidate_etee = self._evaluate_pdn(pdn, conditions).etee
        baseline_etee = self._evaluate_pdn(self._baseline, conditions).etee
        candidate_budget = self._budget.split(
            tdp_w, candidate_etee, benchmark.workload_type
        ).compute_w
        baseline_budget = self._budget.split(
            tdp_w, baseline_etee, benchmark.workload_type
        ).compute_w
        extra_budget_w = candidate_budget - baseline_budget
        domain = (
            DomainKind.GFX
            if benchmark.workload_type is WorkloadType.GRAPHICS
            else DomainKind.CORE0
        )
        frequency_delta = self._frequency_delta_fraction(tdp_w, extra_budget_w, domain)
        relative_performance = 1.0 + benchmark.performance_scalability * frequency_delta
        return PerformanceResult(
            pdn_name=pdn.name,
            benchmark_name=benchmark.name,
            tdp_w=tdp_w,
            etee=candidate_etee,
            compute_budget_w=candidate_budget,
            frequency_delta_fraction=frequency_delta,
            relative_performance=relative_performance,
        )

    def _frequency_delta_fraction(
        self, tdp_w: float, extra_budget_w: float, domain: DomainKind
    ) -> float:
        if extra_budget_w >= 0.0:
            return self._sensitivity.frequency_increase_for_power(
                tdp_w, extra_budget_w, domain
            )
        # A PDN with a lower ETEE than the baseline must give back budget,
        # which costs frequency; the same (monotone) curve is used in reverse.
        loss = self._sensitivity.frequency_increase_for_power(
            tdp_w, -extra_budget_w, domain
        )
        return -loss

    # ------------------------------------------------------------------ #
    # Suite-level evaluation
    # ------------------------------------------------------------------ #
    def evaluate_suite(
        self,
        pdn: PowerDeliveryNetwork,
        benchmarks: Iterable[Benchmark],
        tdp_w: float,
    ) -> List[PerformanceResult]:
        """Per-benchmark relative performance of a suite on ``pdn``."""
        return [self.evaluate(pdn, benchmark, tdp_w) for benchmark in benchmarks]

    def average_relative_performance(
        self,
        pdn: PowerDeliveryNetwork,
        benchmarks: Iterable[Benchmark],
        tdp_w: float,
    ) -> float:
        """Suite-average relative performance (the Fig. 8a/8b metric)."""
        results = self.evaluate_suite(pdn, list(benchmarks), tdp_w)
        if not results:
            raise ModelDomainError("cannot average over an empty benchmark list")
        return sum(result.relative_performance for result in results) / len(results)

    def compare_pdns(
        self,
        pdns: Iterable[PowerDeliveryNetwork],
        benchmarks: Iterable[Benchmark],
        tdp_w: float,
    ) -> Dict[str, float]:
        """Suite-average relative performance of several PDNs at one TDP."""
        benchmark_list = list(benchmarks)
        return {
            pdn.name: self.average_relative_performance(pdn, benchmark_list, tdp_w)
            for pdn in pdns
        }
