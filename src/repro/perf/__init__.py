"""Processor performance model (Sec. 3.3 of the paper).

The performance model converts a PDN's end-to-end efficiency into workload
performance in three steps:

1. the power-budget manager determines how much nominal power each PDN leaves
   for the compute domains at a given TDP (:mod:`repro.power.budget`),
2. the frequency-sensitivity model says how much extra power a 1 % frequency
   increase costs at that TDP (:mod:`repro.perf.frequency_sensitivity`,
   Fig. 2a), and
3. the workload's performance scalability converts the frequency increase into
   a performance increase (:mod:`repro.perf.model`).

:mod:`repro.perf.budget_breakdown` reproduces the power-budget breakdown of
Fig. 2(b).
"""

from repro.perf.frequency_sensitivity import (
    FrequencySensitivityModel,
    power_for_frequency_increase_w,
)
from repro.perf.budget_breakdown import budget_breakdown_for_tdp, worst_case_pdn_loss
from repro.perf.model import PerformanceModel, PerformanceResult

__all__ = [
    "FrequencySensitivityModel",
    "power_for_frequency_increase_w",
    "budget_breakdown_for_tdp",
    "worst_case_pdn_loss",
    "PerformanceModel",
    "PerformanceResult",
]
