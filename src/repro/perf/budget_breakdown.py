"""Power-budget breakdown across TDPs (Fig. 2b).

Fig. 2(b) shows, for a CPU-intensive workload at each TDP, what fraction of
the package budget goes to the SA+IO domains, the CPU cores, the LLC, and to
PDN conversion loss -- using, at each TDP, whichever of the three
commonly-used PDNs has the *highest* loss (IVR at low TDP, MBVR at high TDP),
to illustrate the cost of an unoptimised PDN choice.

The breakdown here is produced by evaluating the actual PDN models and feeding
the resulting ETEE into the power-budget manager, so it is consistent with the
rest of the library by construction.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.pdn.base import OperatingConditions
from repro.pdn.registry import build_pdn
from repro.power.budget import PowerBudgetManager, PowerBudgetSplit
from repro.power.domains import WorkloadType
from repro.util.validation import require_positive

#: The three commonly-used PDNs among which the worst-loss one is selected.
COMMON_PDNS: Sequence[str] = ("IVR", "MBVR", "LDO")


def worst_case_pdn_loss(
    tdp_w: float,
    application_ratio: float = 0.56,
    workload_type: WorkloadType = WorkloadType.CPU_MULTI_THREAD,
) -> Dict[str, float]:
    """ETEE of the three common PDNs at ``tdp_w`` and the worst one's name.

    Returns a mapping with one entry per PDN plus ``"worst"`` naming the PDN
    with the lowest ETEE (highest loss).
    """
    require_positive(tdp_w, "tdp_w")
    conditions = OperatingConditions.for_active_workload(
        tdp_w, application_ratio, workload_type
    )
    etees = {name: build_pdn(name).evaluate(conditions).etee for name in COMMON_PDNS}
    worst = min(etees, key=etees.get)
    result: Dict[str, float] = dict(etees)
    result["worst"] = worst
    return result


def budget_breakdown_for_tdp(
    tdp_w: float,
    application_ratio: float = 0.56,
    workload_type: WorkloadType = WorkloadType.CPU_MULTI_THREAD,
) -> PowerBudgetSplit:
    """The Fig. 2(b) budget breakdown at ``tdp_w`` using the worst-loss PDN."""
    losses = worst_case_pdn_loss(tdp_w, application_ratio, workload_type)
    worst_etee = losses[losses["worst"]]
    manager = PowerBudgetManager()
    return manager.split(tdp_w, worst_etee, workload_type)
