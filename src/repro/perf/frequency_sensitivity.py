"""Frequency sensitivity: the power cost of a 1 % frequency increase (Fig. 2a).

The paper builds power-frequency curves empirically by sweeping the CPU
(graphics) frequency in 100 MHz (50 MHz) steps on a Skylake system and
measuring the power delta per step.  Here the same curves are derived
analytically from the library's own power model:

* dynamic power scales with ``V^2 * f`` along the domain's voltage/frequency
  curve, and
* leakage power scales with ``V^delta`` (delta ~= 2.8, Sec. 3.1),

so the extra power for a small frequency increase around the sustained
operating point of a TDP is the derivative of that expression, evaluated with
the Table-2 nominal powers.  The resulting numbers match Fig. 2(a)'s
qualitative statement: ~9 mW per 1 % at a 4 W TDP, growing to hundreds of
milliwatts at 50 W.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.domains import DomainKind, NominalPowerCurves, WorkloadType
from repro.power.leakage import LEAKAGE_VOLTAGE_EXPONENT
from repro.soc.dvfs import (
    CORE_VF_CURVE,
    GFX_VF_CURVE,
    VoltageFrequencyCurve,
    sustained_core_frequency_ghz,
    sustained_gfx_frequency_ghz,
)
from repro.util.errors import ModelDomainError
from repro.util.validation import require_positive


@dataclass(frozen=True)
class FrequencySensitivityModel:
    """Power cost of small frequency increases around a TDP's operating point.

    Parameters
    ----------
    curves:
        Nominal-power-versus-TDP curves (Table 2 defaults).
    leakage_fraction:
        Leakage fraction of the domain being scaled.
    leakage_exponent:
        Voltage exponent of leakage (2.8).
    """

    curves: NominalPowerCurves = None
    leakage_fraction: float = 0.22
    leakage_exponent: float = LEAKAGE_VOLTAGE_EXPONENT

    def __post_init__(self) -> None:
        if self.curves is None:
            object.__setattr__(self, "curves", NominalPowerCurves())

    # ------------------------------------------------------------------ #
    # Core / graphics specialisations
    # ------------------------------------------------------------------ #
    def cpu_power_for_one_percent_w(self, tdp_w: float) -> float:
        """Extra power to raise the CPU core frequency by 1 % at ``tdp_w``."""
        require_positive(tdp_w, "tdp_w")
        nominal_power_w = self.curves.cores_power_w(tdp_w, WorkloadType.CPU_MULTI_THREAD)
        frequency_ghz = sustained_core_frequency_ghz(tdp_w)
        return self._power_delta_w(nominal_power_w, frequency_ghz, CORE_VF_CURVE, 0.01)

    def gfx_power_for_one_percent_w(self, tdp_w: float) -> float:
        """Extra power to raise the graphics frequency by 1 % at ``tdp_w``."""
        require_positive(tdp_w, "tdp_w")
        nominal_power_w = self.curves.gfx_power_w(tdp_w, WorkloadType.GRAPHICS)
        frequency_ghz = sustained_gfx_frequency_ghz(tdp_w)
        return self._power_delta_w(
            nominal_power_w, frequency_ghz, GFX_VF_CURVE, 0.01, leakage_fraction=0.45
        )

    def power_for_frequency_increase_w(
        self, tdp_w: float, frequency_increase_fraction: float, domain: DomainKind
    ) -> float:
        """Extra power to raise ``domain``'s frequency by a given fraction."""
        require_positive(tdp_w, "tdp_w")
        if frequency_increase_fraction < 0.0:
            raise ModelDomainError("frequency_increase_fraction must be >= 0")
        if domain is DomainKind.GFX:
            nominal_power_w = self.curves.gfx_power_w(tdp_w, WorkloadType.GRAPHICS)
            frequency_ghz = sustained_gfx_frequency_ghz(tdp_w)
            return self._power_delta_w(
                nominal_power_w,
                frequency_ghz,
                GFX_VF_CURVE,
                frequency_increase_fraction,
                leakage_fraction=0.45,
            )
        nominal_power_w = self.curves.cores_power_w(tdp_w, WorkloadType.CPU_MULTI_THREAD)
        frequency_ghz = sustained_core_frequency_ghz(tdp_w)
        return self._power_delta_w(
            nominal_power_w, frequency_ghz, CORE_VF_CURVE, frequency_increase_fraction
        )

    def frequency_increase_for_power(
        self, tdp_w: float, extra_power_w: float, domain: DomainKind = DomainKind.CORE0
    ) -> float:
        """Fractional frequency increase affordable with ``extra_power_w``.

        Solved by bisection over the (monotone) power-delta function, capped at
        the domain's maximum frequency.
        """
        require_positive(tdp_w, "tdp_w")
        if extra_power_w <= 0.0:
            return 0.0
        vf_curve = GFX_VF_CURVE if domain is DomainKind.GFX else CORE_VF_CURVE
        base_frequency = (
            sustained_gfx_frequency_ghz(tdp_w)
            if domain is DomainKind.GFX
            else sustained_core_frequency_ghz(tdp_w)
        )
        max_fraction = vf_curve.max_frequency_ghz / base_frequency - 1.0
        if max_fraction <= 0.0:
            return 0.0
        low, high = 0.0, max_fraction
        if self.power_for_frequency_increase_w(tdp_w, max_fraction, domain) <= extra_power_w:
            return max_fraction
        for _ in range(60):
            mid = 0.5 * (low + high)
            if self.power_for_frequency_increase_w(tdp_w, mid, domain) <= extra_power_w:
                low = mid
            else:
                high = mid
        return low

    # ------------------------------------------------------------------ #
    # Internal physics
    # ------------------------------------------------------------------ #
    def _power_delta_w(
        self,
        nominal_power_w: float,
        frequency_ghz: float,
        vf_curve: VoltageFrequencyCurve,
        frequency_increase_fraction: float,
        leakage_fraction: float = None,
    ) -> float:
        if leakage_fraction is None:
            leakage_fraction = self.leakage_fraction
        baseline_voltage = vf_curve.voltage_for_frequency(frequency_ghz)
        target_frequency = frequency_ghz * (1.0 + frequency_increase_fraction)
        target_voltage = vf_curve.voltage_for_frequency(target_frequency)
        voltage_ratio = target_voltage / baseline_voltage
        frequency_ratio = target_frequency / frequency_ghz
        dynamic_fraction = 1.0 - leakage_fraction
        dynamic_scale = voltage_ratio**2 * frequency_ratio
        leakage_scale = voltage_ratio**self.leakage_exponent
        scaled_power = nominal_power_w * (
            dynamic_fraction * dynamic_scale + leakage_fraction * leakage_scale
        )
        return scaled_power - nominal_power_w


def power_for_frequency_increase_w(
    tdp_w: float, domain: DomainKind = DomainKind.CORE0
) -> float:
    """Module-level convenience: Fig. 2(a)'s "power for +1 % frequency" value."""
    model = FrequencySensitivityModel()
    if domain is DomainKind.GFX:
        return model.gfx_power_for_one_percent_w(tdp_w)
    return model.cpu_power_for_one_percent_w(tdp_w)
