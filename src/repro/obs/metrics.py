"""Process-wide metrics: counters, gauges and log-spaced histograms.

One :class:`MetricsRegistry` (:data:`METRICS`) accumulates counts for the
whole process; every instrumented layer binds its instruments once at
import time and increments them on the hot path without any registry
lookup.  :meth:`MetricsRegistry.snapshot` renders the registry as one
JSON-ready document with a stable, versioned schema -- the payload behind
``GET /v1/metrics`` and the counter track of an exported Chrome trace.

The histogram generalizes the fixed log-spaced latency histogram the
evaluation service introduced in PR 6 (``repro/serve/stats.py`` is now a
thin wrapper over this module), so every latency distribution in the
process shares one bucket layout and one serialized shape.

Worker processes spawned by the process executor accumulate into their own
registry; only their trace spans ship back to the parent.  Counters that
must appear in the parent's snapshot are therefore incremented on the
parent side of the fork (see ``repro/analysis/executor.py``).
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Tuple

#: Version of the :meth:`MetricsRegistry.snapshot` document schema.
METRICS_SCHEMA_VERSION = 1

#: Default upper bucket bounds (seconds) of latency histograms: fixed and
#: log-spaced so dashboards can diff histograms across processes and runs;
#: the terminal bucket is unbounded.  Identical to the PR 6 serve bounds.
DEFAULT_LATENCY_BOUNDS_S: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, math.inf,
)


def bucket_label(bound: float) -> str:
    """The JSON key of one histogram bucket bound (``inf`` for the last)."""
    return "inf" if math.isinf(bound) else f"{bound:g}"


class Counter:
    """A monotonically increasing, thread-safe integer counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """The current count."""
        return self._value


class Gauge:
    """A thread-safe instantaneous value (last write wins)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        """The most recently recorded value."""
        return self._value


class Histogram:
    """A fixed-bucket, thread-safe histogram (cumulative-free, JSON-ready).

    Parameters
    ----------
    bounds:
        Upper bucket bounds in ascending order; observations above the last
        finite bound land in the terminal bucket.  Defaults to the shared
        log-spaced latency layout (:data:`DEFAULT_LATENCY_BOUNDS_S`).
    """

    __slots__ = ("_bounds", "_counts", "_count", "_sum", "_lock")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_LATENCY_BOUNDS_S):
        self._bounds = tuple(bounds)
        self._counts: List[int] = [0] * len(self._bounds)
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            for index, bound in enumerate(self._bounds):
                if value <= bound:
                    self._counts[index] += 1
                    break
            self._count += 1
            self._sum += value

    @property
    def bounds(self) -> Tuple[float, ...]:
        """The upper bucket bounds."""
        return self._bounds

    @property
    def count(self) -> int:
        """Number of recorded observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all recorded observations."""
        return self._sum

    def as_dict(self, sum_key: str = "sum") -> Dict[str, object]:
        """The histogram as a JSON-ready mapping (stable key order).

        Parameters
        ----------
        sum_key:
            Key the observation sum is published under; the serve layer
            keeps its historical ``sum_s`` spelling through this knob.
        """
        with self._lock:
            counts = list(self._counts)
            count, total = self._count, self._sum
        buckets = {
            bucket_label(bound): value for bound, value in zip(self._bounds, counts)
        }
        return {"count": count, sum_key: total, "buckets": buckets}


class MetricsRegistry:
    """A named registry of counters, gauges and histograms.

    Instruments are created on first request and shared thereafter
    (get-or-create semantics), so independent layers binding the same name
    accumulate into the same instrument.  Hot paths should bind once at
    import time and hold the instrument, not look it up per event.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created when absent)."""
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created when absent)."""
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(
        self, name: str, bounds: Optional[Tuple[float, ...]] = None
    ) -> Histogram:
        """The histogram registered under ``name`` (created when absent).

        ``bounds`` only applies on creation; later callers receive the
        existing instrument regardless of the bounds they pass.
        """
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = Histogram(bounds or DEFAULT_LATENCY_BOUNDS_S)
                self._histograms[name] = histogram
            return histogram

    def snapshot(self) -> Dict[str, object]:
        """The registry as one JSON-ready document (stable, versioned schema).

        The document always carries exactly four keys --
        ``schema_version``, ``counters``, ``gauges``, ``histograms`` --
        with instrument names sorted for deterministic serialization.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "counters": {name: counters[name].value for name in sorted(counters)},
            "gauges": {name: gauges[name].value for name in sorted(gauges)},
            "histograms": {
                name: histograms[name].as_dict() for name in sorted(histograms)
            },
        }

    def reset(self) -> None:
        """Zero every registered instrument in place (test isolation hook).

        Instruments stay registered (hot paths bind them once at import
        time and keep the reference); only their accumulated state drops.
        """
        with self._lock:
            for counter in self._counters.values():
                with counter._lock:
                    counter._value = 0
            for gauge in self._gauges.values():
                with gauge._lock:
                    gauge._value = 0.0
            for histogram in self._histograms.values():
                with histogram._lock:
                    histogram._counts = [0] * len(histogram._bounds)
                    histogram._count = 0
                    histogram._sum = 0.0


#: The process-wide registry every instrumented layer accumulates into.
METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return METRICS
