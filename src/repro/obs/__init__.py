"""Unified observability: span tracing and process-wide metrics.

The two halves answer the two questions a multi-layer evaluation stack
raises:

* **Where did the time go?** -- :mod:`repro.obs.trace`, a thread-safe span
  tracer with a context-manager API, monotonic clocks and a zero-allocation
  no-op path when disabled.  Spans recorded in :class:`ProcessExecutor`
  workers ship back to the parent as picklable batches, so one exported
  Chrome-trace/Perfetto JSON file covers the fork boundary.
* **How often did each path run?** -- :mod:`repro.obs.metrics`, a
  process-wide registry of counters, gauges and log-spaced histograms with
  a stable snapshot schema, generalized out of the serve-local statistics
  of PR 6.

Every evaluation layer is instrumented through this package: the executor
shard lifecycle, the two-tier cache, the columnar engine dispatch, disk
cache I/O, FlexWatts calibration, the interval simulator and the serving
daemon.  The surfaces are ``--trace FILE`` on the batch CLI commands,
``GET /v1/metrics`` on the daemon, and :class:`RunStats` attached to result
containers.  See ``docs/guides/observability.md`` for the span taxonomy.
"""

from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BOUNDS_S,
    Gauge,
    Histogram,
    METRICS,
    METRICS_SCHEMA_VERSION,
    MetricsRegistry,
    get_metrics,
)
from repro.obs.runstats import RunStats
from repro.obs.trace import (
    SpanRecord,
    Tracer,
    active_tracer,
    attach_pmu_tracing,
    counter_event,
    install_tracer,
    instant,
    span,
    tracing_enabled,
    uninstall_tracer,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BOUNDS_S",
    "Gauge",
    "Histogram",
    "METRICS",
    "METRICS_SCHEMA_VERSION",
    "MetricsRegistry",
    "RunStats",
    "SpanRecord",
    "Tracer",
    "active_tracer",
    "attach_pmu_tracing",
    "counter_event",
    "get_metrics",
    "install_tracer",
    "instant",
    "span",
    "tracing_enabled",
    "uninstall_tracer",
    "write_chrome_trace",
]
