"""Thread-safe span tracing with Chrome-trace/Perfetto JSON export.

One :class:`Tracer` collects :class:`SpanRecord` events -- durationful
spans, instants and counter samples -- from every thread of a process.
Durations come from the monotonic :func:`time.perf_counter` clock;
timestamps are wall-aligned at tracer construction so span batches
recorded in *different processes* (the process-pool workers) land on one
consistent timeline when merged into the parent's tracer.

The module-level API is the instrumentation surface the rest of the
library uses::

    with obs_trace.span("executor.chunk", units=len(chunk)) as active:
        ...
        active.set("columnar", used_columnar)

When no tracer is installed (:func:`install_tracer` has not run), the
module helpers return one shared no-op span object and allocate nothing,
so instrumented hot paths cost a dict build and a function call -- the
``obs-overhead`` benchmark gate holds this below 5% on the fig7-scale
cold batch.

Nesting is tracked per thread: each span records its enclosing span's
name in ``args["parent"]``.  Coroutines interleaving on one event-loop
thread share that stack, so parent attribution inside ``repro.serve`` is
best-effort; timestamps and durations are always exact.

Worker processes build their own :class:`Tracer` (see
``repro.analysis.executor._init_worker``), :meth:`Tracer.drain` their
records -- plain picklable dataclasses -- into the chunk result, and the
parent :meth:`Tracer.absorb`\\ s them, preserving the worker's pid/tid so
the exported trace shows every process lane.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import MetricsRegistry
    from repro.soc.pmu import PowerManagementUnit

#: Version of the exported trace document's ``otherData`` schema.
TRACE_SCHEMA_VERSION = 1


@dataclass
class SpanRecord:
    """One recorded trace event (picklable across the fork boundary).

    ``phase`` follows the Chrome trace-event phases: ``"X"`` for complete
    spans, ``"i"`` for instants, ``"C"`` for counter samples.
    """

    name: str
    category: str
    phase: str
    ts_us: float
    dur_us: float
    pid: int
    tid: int
    args: Dict[str, object] = field(default_factory=dict)

    def to_chrome_event(self) -> Dict[str, object]:
        """The record as one Chrome trace-event object."""
        event: Dict[str, object] = {
            "name": self.name,
            "cat": self.category,
            "ph": self.phase,
            "ts": self.ts_us,
            "pid": self.pid,
            "tid": self.tid,
            "args": self.args,
        }
        if self.phase == "X":
            event["dur"] = self.dur_us
        if self.phase == "i":
            event["s"] = "t"  # thread-scoped instant
        return event


class _NullSpan:
    """The shared no-op span: every tracing call site when tracing is off."""

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        """Discard an attribute (tracing is disabled)."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


#: The one pre-allocated no-op span (zero allocation on the disabled path).
_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """A live span: records its duration and attributes on ``__exit__``."""

    __slots__ = ("_tracer", "_name", "_category", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 args: Dict[str, object]):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._args = args
        self._start = 0.0

    def set(self, key: str, value: object) -> None:
        """Attach one attribute to the span."""
        self._args[key] = value

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        stack = tracer._thread_stack()
        if stack:
            self._args.setdefault("parent", stack[-1])
        stack.append(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = time.perf_counter()
        tracer = self._tracer
        stack = tracer._thread_stack()
        if stack and stack[-1] == self._name:
            stack.pop()
        tracer._record(
            SpanRecord(
                name=self._name,
                category=self._category,
                phase="X",
                ts_us=tracer._to_wall_us(self._start),
                dur_us=(end - self._start) * 1e6,
                pid=os.getpid(),
                tid=threading.get_ident(),
                args=self._args,
            )
        )
        return False


class Tracer:
    """A thread-safe collector of trace events for one process.

    All recording methods may be called from any thread; records carry the
    recording thread's id and the process id, which is how the exported
    trace separates lanes.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._epoch_wall_us = time.time() * 1e6
        self._epoch_mono = time.perf_counter()
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    # Clock and storage internals
    # ------------------------------------------------------------------ #
    def _to_wall_us(self, mono_s: float) -> float:
        """A monotonic reading as wall-aligned microseconds."""
        return self._epoch_wall_us + (mono_s - self._epoch_mono) * 1e6

    def _thread_stack(self) -> List[str]:
        """The calling thread's stack of open span names."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    # ------------------------------------------------------------------ #
    # Recording API
    # ------------------------------------------------------------------ #
    def span(self, name: str, category: str = "repro",
             **attributes: object) -> _ActiveSpan:
        """A context manager recording one complete span around its body."""
        return _ActiveSpan(self, name, category, dict(attributes))

    def instant(self, name: str, category: str = "repro",
                **attributes: object) -> None:
        """Record one zero-duration instant event."""
        self._record(
            SpanRecord(
                name=name,
                category=category,
                phase="i",
                ts_us=self._to_wall_us(time.perf_counter()),
                dur_us=0.0,
                pid=os.getpid(),
                tid=threading.get_ident(),
                args=dict(attributes),
            )
        )

    def counter(self, name: str, values: Dict[str, float],
                category: str = "repro") -> None:
        """Record one counter sample (a Chrome ``"C"`` event)."""
        self._record(
            SpanRecord(
                name=name,
                category=category,
                phase="C",
                ts_us=self._to_wall_us(time.perf_counter()),
                dur_us=0.0,
                pid=os.getpid(),
                tid=threading.get_ident(),
                args=dict(values),
            )
        )

    # ------------------------------------------------------------------ #
    # Batch transport (the fork boundary) and export
    # ------------------------------------------------------------------ #
    def drain(self) -> List[SpanRecord]:
        """Remove and return every record (the worker-side batch handoff)."""
        with self._lock:
            records, self._records = self._records, []
        return records

    def absorb(self, records: List[SpanRecord]) -> None:
        """Merge records drained from another tracer (worker span batches)."""
        with self._lock:
            self._records.extend(records)

    def records(self) -> List[SpanRecord]:
        """A snapshot copy of the collected records."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def to_chrome_trace(
        self, metrics: Optional["MetricsRegistry"] = None
    ) -> Dict[str, object]:
        """The collected records as one Chrome-trace JSON object.

        With ``metrics`` given, one terminal counter sample per registered
        counter and gauge is appended, so the trace carries the process's
        final cache-tier / dispatch tallies alongside the span timeline.
        """
        events = [record.to_chrome_event() for record in self.records()]
        if metrics is not None:
            snapshot = metrics.snapshot()
            now_us = self._to_wall_us(time.perf_counter())
            pid, tid = os.getpid(), threading.get_ident()
            for section in ("counters", "gauges"):
                for name, value in snapshot[section].items():
                    events.append(
                        SpanRecord(
                            name=name,
                            category="metrics",
                            phase="C",
                            ts_us=now_us,
                            dur_us=0.0,
                            pid=pid,
                            tid=tid,
                            args={"value": value},
                        ).to_chrome_event()
                    )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.obs",
                "schema_version": TRACE_SCHEMA_VERSION,
            },
        }

    def write(self, path: str,
              metrics: Optional["MetricsRegistry"] = None) -> None:
        """Write the Chrome-trace JSON document to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(metrics), handle)


# --------------------------------------------------------------------------- #
# The module-level instrumentation surface
# --------------------------------------------------------------------------- #
_ACTIVE: Optional[Tracer] = None


def install_tracer(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the process's active tracer, enabling tracing."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    return _ACTIVE


def uninstall_tracer() -> Optional[Tracer]:
    """Disable tracing; returns the tracer that was active, if any."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


def active_tracer() -> Optional[Tracer]:
    """The currently installed tracer, or ``None`` when tracing is off."""
    return _ACTIVE


def tracing_enabled() -> bool:
    """Whether a tracer is installed (instrumentation's cheap guard)."""
    return _ACTIVE is not None


def span(name: str, category: str = "repro", **attributes: object):
    """A span context manager on the active tracer (shared no-op when off)."""
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, category, **attributes)


def instant(name: str, category: str = "repro", **attributes: object) -> None:
    """Record an instant on the active tracer (no-op when tracing is off)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.instant(name, category, **attributes)


def counter_event(name: str, values: Dict[str, float],
                  category: str = "repro") -> None:
    """Record a counter sample on the active tracer (no-op when off)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.counter(name, values, category)


def write_chrome_trace(path: str, tracer: Optional[Tracer],
                       metrics: Optional["MetricsRegistry"] = None) -> None:
    """Write ``tracer``'s records (plus final metrics samples) to ``path``.

    Accepts ``None`` for ``tracer`` so CLI teardown can call it
    unconditionally with whatever :func:`uninstall_tracer` returned; an
    empty-but-valid trace document is still written in that case.
    """
    if tracer is None:
        tracer = Tracer()
    tracer.write(path, metrics)


def attach_pmu_tracing(pmu: "PowerManagementUnit") -> None:
    """Bridge a PMU's telemetry events into trace instants and counters.

    Registers a telemetry listener that mirrors every
    :class:`~repro.soc.pmu.PmuTelemetry` emission as a ``pmu.telemetry``
    instant (power state, workload type, TDP) and bumps the
    ``sim.pmu.telemetry_events`` counter -- so a simulation trace shows
    per-phase PMU activity on the same timeline as the engine spans.
    The listener is a no-op while tracing is disabled.  Attaching the same
    PMU twice is a no-op (a marker attribute guards re-registration), so
    engines may bridge unconditionally per run.
    """
    from repro.obs.metrics import METRICS

    if getattr(pmu, "_obs_telemetry_bridged", False):
        return
    telemetry_events = METRICS.counter("sim.pmu.telemetry_events")

    def _on_telemetry(telemetry: object) -> None:
        telemetry_events.inc()
        tracer = _ACTIVE
        if tracer is None:
            return
        tracer.instant(
            "pmu.telemetry",
            category="sim",
            power_state=str(getattr(telemetry, "power_state", None)),
            workload_type=str(getattr(telemetry, "workload_type", None)),
            tdp_w=getattr(telemetry, "tdp_w", None),
            application_ratio=getattr(telemetry, "application_ratio", None),
        )

    pmu.add_telemetry_listener(_on_telemetry)
    pmu._obs_telemetry_bridged = True
