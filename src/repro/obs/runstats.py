"""Per-run evaluation statistics attached to result containers.

A :class:`RunStats` summarises one batch evaluation -- unit count, wall
time and the memory-cache traffic it generated -- and rides on the
container the run produced: ``ResultSet.run_stats`` after
:meth:`PdnSpot.run` / :meth:`SimEngine.run`, and
``OptimizationOutcome.run_stats`` after :func:`run_optimization`.  It is
advisory metadata: never serialized with the container and never part of
container equality, so bit-identity contracts between serial and parallel
runs (and across the serve boundary) are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class RunStats:
    """A summary of one batch evaluation run.

    Parameters
    ----------
    units:
        Evaluation units the run requested (including duplicates).
    duration_s:
        Wall-clock seconds of the run, from the monotonic clock.
    cache_hits, cache_misses:
        Memory-tier cache traffic the run generated (deltas of the
        engine's ``cache_info()`` counters, so a warm rerun shows all
        hits and no misses).
    executor:
        Name of the backend that dispatched the run (``serial`` /
        ``thread`` / ``process``), or ``default`` for the engine's
        built-in serial path.
    """

    units: int
    duration_s: float
    cache_hits: int
    cache_misses: int
    executor: str = "default"

    @property
    def hit_rate(self) -> float:
        """Fraction of cache lookups served from cache (0.0 when none)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        """The statistics as a JSON-ready mapping (stable key order)."""
        return {
            "units": self.units,
            "duration_s": self.duration_s,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "executor": self.executor,
        }


def executor_label(executor: Optional[object]) -> str:
    """The :class:`RunStats` label of an ``executor=`` argument."""
    if executor is None:
        return "default"
    name = getattr(executor, "name", None)
    if isinstance(name, str) and name:
        return name
    return str(executor)
