"""Bill-of-materials (BOM) model (Sec. 3.2, Fig. 8d).

The paper maps each off-chip regulator's Iccmax to a cost using vendor data
(Texas Instruments DC-DC regulator catalogue) and assumes a PMIC-based
solution for TDPs up to 18 W and discrete VRMs above that.  The mapping is
behavioural here: each rail costs a small fixed adder (controller, packaging,
passives) plus a per-amp component; VRM rails have a larger fixed adder than
PMIC rails because every rail is a separate physical module.

Only *relative* costs matter for the paper's conclusions (Fig. 8d normalises
to IVR), so costs are expressed in arbitrary units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.pdn.base import PowerDeliveryNetwork
from repro.util.validation import require_non_negative, require_positive

#: TDP above which platforms use discrete VRMs instead of a PMIC (Sec. 3.2).
PMIC_TDP_LIMIT_W = 18.0


@dataclass(frozen=True)
class BomEstimate:
    """BOM estimate of one PDN at one TDP (arbitrary cost units)."""

    pdn_name: str
    tdp_w: float
    uses_pmic: bool
    rail_costs: Dict[str, float]

    @property
    def total_cost(self) -> float:
        """Total PDN BOM cost."""
        return sum(self.rail_costs.values())

    def normalised_to(self, reference: "BomEstimate") -> float:
        """This PDN's cost relative to ``reference`` (the Fig. 8d metric)."""
        if reference.total_cost <= 0.0:
            raise ValueError("reference BOM cost must be positive")
        return self.total_cost / reference.total_cost


@dataclass(frozen=True)
class BomModel:
    """Iccmax -> cost mapping with a PMIC/VRM split.

    Attributes
    ----------
    pmic_rail_adder / vrm_rail_adder:
        Fixed cost per regulator rail for PMIC-integrated and discrete (VRM)
        solutions respectively.
    pmic_cost_per_amp / vrm_cost_per_amp:
        Incremental cost per amp of Iccmax.
    pmic_base_cost:
        Cost of the PMIC die/package itself, shared by all its rails.
    """

    pmic_rail_adder: float = 0.06
    vrm_rail_adder: float = 0.35
    pmic_cost_per_amp: float = 0.18
    vrm_cost_per_amp: float = 0.16
    pmic_base_cost: float = 0.25
    pmic_tdp_limit_w: float = PMIC_TDP_LIMIT_W

    def __post_init__(self) -> None:
        require_non_negative(self.pmic_rail_adder, "pmic_rail_adder")
        require_non_negative(self.vrm_rail_adder, "vrm_rail_adder")
        require_non_negative(self.pmic_cost_per_amp, "pmic_cost_per_amp")
        require_non_negative(self.vrm_cost_per_amp, "vrm_cost_per_amp")
        require_non_negative(self.pmic_base_cost, "pmic_base_cost")
        require_positive(self.pmic_tdp_limit_w, "pmic_tdp_limit_w")

    def uses_pmic(self, tdp_w: float) -> bool:
        """Whether a platform at ``tdp_w`` integrates its regulators in a PMIC."""
        require_positive(tdp_w, "tdp_w")
        return tdp_w <= self.pmic_tdp_limit_w

    def rail_cost(self, iccmax_a: float, tdp_w: float) -> float:
        """Cost of one regulator rail designed for ``iccmax_a``."""
        require_non_negative(iccmax_a, "iccmax_a")
        if self.uses_pmic(tdp_w):
            return self.pmic_rail_adder + self.pmic_cost_per_amp * iccmax_a
        return self.vrm_rail_adder + self.vrm_cost_per_amp * iccmax_a

    def estimate(self, pdn: PowerDeliveryNetwork, tdp_w: float) -> BomEstimate:
        """BOM estimate of ``pdn`` at ``tdp_w``."""
        requirements = pdn.iccmax_requirements_a(tdp_w)
        uses_pmic = self.uses_pmic(tdp_w)
        rail_costs = {
            rail: self.rail_cost(iccmax_a, tdp_w)
            for rail, iccmax_a in requirements.items()
        }
        if uses_pmic:
            rail_costs["pmic_base"] = self.pmic_base_cost
        return BomEstimate(
            pdn_name=pdn.name, tdp_w=tdp_w, uses_pmic=uses_pmic, rail_costs=rail_costs
        )

    def compare(
        self, pdns: Iterable[PowerDeliveryNetwork], tdp_w: float, reference_name: str = "IVR"
    ) -> Dict[str, float]:
        """Normalised BOM of several PDNs at ``tdp_w`` (Fig. 8d rows)."""
        estimates = {pdn.name: self.estimate(pdn, tdp_w) for pdn in pdns}
        if reference_name not in estimates:
            raise ValueError(f"reference PDN {reference_name!r} not among the compared PDNs")
        reference = estimates[reference_name]
        return {
            name: estimate.normalised_to(reference) for name, estimate in estimates.items()
        }
