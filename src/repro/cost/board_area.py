"""Board-area model (Sec. 3.2, Fig. 8e).

Like the BOM model, board area is driven by each off-chip regulator's Iccmax:
a higher current rating needs more phases, larger inductors and more input /
output capacitance.  Discrete (VRM) solutions additionally pay a per-rail
placement overhead that a PMIC amortises across its integrated rails.

Areas are expressed in square millimetres of board space; as with cost, the
paper's conclusions rest on the *relative* areas (Fig. 8e normalises to IVR).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.cost.bom import PMIC_TDP_LIMIT_W
from repro.pdn.base import PowerDeliveryNetwork
from repro.util.validation import require_non_negative, require_positive


@dataclass(frozen=True)
class BoardAreaEstimate:
    """Board-area estimate of one PDN at one TDP (mm^2)."""

    pdn_name: str
    tdp_w: float
    uses_pmic: bool
    rail_areas_mm2: Dict[str, float]

    @property
    def total_area_mm2(self) -> float:
        """Total board area used by the PDN's off-chip regulators."""
        return sum(self.rail_areas_mm2.values())

    def normalised_to(self, reference: "BoardAreaEstimate") -> float:
        """This PDN's area relative to ``reference`` (the Fig. 8e metric)."""
        if reference.total_area_mm2 <= 0.0:
            raise ValueError("reference area must be positive")
        return self.total_area_mm2 / reference.total_area_mm2


@dataclass(frozen=True)
class BoardAreaModel:
    """Iccmax -> board-area mapping with a PMIC/VRM split."""

    pmic_rail_adder_mm2: float = 8.0
    vrm_rail_adder_mm2: float = 60.0
    pmic_area_per_amp_mm2: float = 16.0
    vrm_area_per_amp_mm2: float = 14.0
    pmic_base_area_mm2: float = 30.0
    pmic_tdp_limit_w: float = PMIC_TDP_LIMIT_W

    def __post_init__(self) -> None:
        require_non_negative(self.pmic_rail_adder_mm2, "pmic_rail_adder_mm2")
        require_non_negative(self.vrm_rail_adder_mm2, "vrm_rail_adder_mm2")
        require_non_negative(self.pmic_area_per_amp_mm2, "pmic_area_per_amp_mm2")
        require_non_negative(self.vrm_area_per_amp_mm2, "vrm_area_per_amp_mm2")
        require_non_negative(self.pmic_base_area_mm2, "pmic_base_area_mm2")
        require_positive(self.pmic_tdp_limit_w, "pmic_tdp_limit_w")

    def uses_pmic(self, tdp_w: float) -> bool:
        """Whether a platform at ``tdp_w`` integrates its regulators in a PMIC."""
        require_positive(tdp_w, "tdp_w")
        return tdp_w <= self.pmic_tdp_limit_w

    def rail_area_mm2(self, iccmax_a: float, tdp_w: float) -> float:
        """Board area of one regulator rail designed for ``iccmax_a``."""
        require_non_negative(iccmax_a, "iccmax_a")
        if self.uses_pmic(tdp_w):
            return self.pmic_rail_adder_mm2 + self.pmic_area_per_amp_mm2 * iccmax_a
        return self.vrm_rail_adder_mm2 + self.vrm_area_per_amp_mm2 * iccmax_a

    def estimate(self, pdn: PowerDeliveryNetwork, tdp_w: float) -> BoardAreaEstimate:
        """Board-area estimate of ``pdn`` at ``tdp_w``."""
        requirements = pdn.iccmax_requirements_a(tdp_w)
        uses_pmic = self.uses_pmic(tdp_w)
        rail_areas = {
            rail: self.rail_area_mm2(iccmax_a, tdp_w)
            for rail, iccmax_a in requirements.items()
        }
        if uses_pmic:
            rail_areas["pmic_base"] = self.pmic_base_area_mm2
        return BoardAreaEstimate(
            pdn_name=pdn.name, tdp_w=tdp_w, uses_pmic=uses_pmic, rail_areas_mm2=rail_areas
        )

    def compare(
        self, pdns: Iterable[PowerDeliveryNetwork], tdp_w: float, reference_name: str = "IVR"
    ) -> Dict[str, float]:
        """Normalised board area of several PDNs at ``tdp_w`` (Fig. 8e rows)."""
        estimates = {pdn.name: self.estimate(pdn, tdp_w) for pdn in pdns}
        if reference_name not in estimates:
            raise ValueError(f"reference PDN {reference_name!r} not among the compared PDNs")
        reference = estimates[reference_name]
        return {
            name: estimate.normalised_to(reference) for name, estimate in estimates.items()
        }
