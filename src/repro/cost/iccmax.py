"""Iccmax aggregation helpers.

Every PDN model reports, per off-chip regulator, the maximum current that
regulator must be electrically designed to support
(:meth:`~repro.pdn.base.PowerDeliveryNetwork.iccmax_requirements_a`).  The
cost and area models consume those requirements; this module provides small
helpers to collect and summarise them.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.pdn.base import PowerDeliveryNetwork
from repro.util.validation import require_positive


def total_iccmax_a(pdn: PowerDeliveryNetwork, tdp_w: float) -> float:
    """Total off-chip Iccmax (amps) a PDN requires at ``tdp_w``.

    Sharing regulators across domains reduces this total (Sec. 3.2), which is
    the root cause of the IVR/FlexWatts cost advantage over MBVR and LDO.
    """
    require_positive(tdp_w, "tdp_w")
    return sum(pdn.iccmax_requirements_a(tdp_w).values())


def pdn_iccmax_summary(
    pdns: Iterable[PowerDeliveryNetwork], tdp_w: float
) -> Dict[str, Dict[str, float]]:
    """Per-PDN, per-rail Iccmax requirements at ``tdp_w``."""
    require_positive(tdp_w, "tdp_w")
    return {pdn.name: dict(pdn.iccmax_requirements_a(tdp_w)) for pdn in pdns}
