"""Board-area and bill-of-materials (BOM) models (Sec. 3.2, Fig. 8d-e).

The board area and cost of an off-chip regulator are driven primarily by the
maximum current (Iccmax) it must be designed for.  Platforms with TDPs up to
18 W integrate their regulators into a power-management IC (PMIC); higher-TDP
platforms use discrete voltage-regulator modules (VRMs), which carry a larger
per-rail overhead.

* :mod:`repro.cost.iccmax` -- aggregates each PDN's off-chip Iccmax
  requirements.
* :mod:`repro.cost.bom` -- the Iccmax -> cost mapping and PDN BOM comparison.
* :mod:`repro.cost.board_area` -- the Iccmax -> board-area mapping and PDN
  area comparison.
"""

from repro.cost.iccmax import pdn_iccmax_summary, total_iccmax_a
from repro.cost.bom import BomModel, BomEstimate
from repro.cost.board_area import BoardAreaModel, BoardAreaEstimate

__all__ = [
    "pdn_iccmax_summary",
    "total_iccmax_a",
    "BomModel",
    "BomEstimate",
    "BoardAreaModel",
    "BoardAreaEstimate",
]
