"""Multi-objective PDN design-space exploration (the ``optimize`` subsystem).

The paper's core contribution is a *design choice*: among competing
power-delivery topologies, the hybrid PDN wins on the joint objectives of
energy efficiency, performance, board area and BOM cost.  This subsystem
derives that conclusion automatically: declare a
:class:`~repro.optimize.space.DesignSpace` (topologies x component-sizing
parameter axes), pick objectives and a search strategy, and
:func:`~repro.optimize.runner.run_optimization` returns the evaluated
candidates, their Pareto front and the knee-point pick -- with every model
evaluation dispatched through the memo-cached, executor-parallel Study/Sim
engines.

See the optimisation guide (``docs/guides/optimization.md``) for the full
workflow.
"""

from repro.optimize.objectives import (
    DEFAULT_OBJECTIVES,
    OBJECTIVES,
    CandidateEvaluator,
    EvaluationSettings,
    Objective,
    resolve_objectives,
)
from repro.optimize.pareto import (
    annotate,
    dominates,
    knee_point,
    pareto_front,
    pareto_indices,
    scalarize,
)
from repro.optimize.runner import OptimizationOutcome, run_optimization
from repro.optimize.space import DesignPoint, DesignSpace, DesignSpaceBuilder
from repro.optimize.strategies import (
    STRATEGIES,
    EvolutionarySearch,
    GridSearch,
    RandomSearch,
    SearchStrategy,
    make_strategy,
)

__all__ = [
    "DesignPoint",
    "DesignSpace",
    "DesignSpaceBuilder",
    "Objective",
    "OBJECTIVES",
    "DEFAULT_OBJECTIVES",
    "EvaluationSettings",
    "CandidateEvaluator",
    "resolve_objectives",
    "dominates",
    "pareto_indices",
    "pareto_front",
    "scalarize",
    "knee_point",
    "annotate",
    "SearchStrategy",
    "GridSearch",
    "RandomSearch",
    "EvolutionarySearch",
    "STRATEGIES",
    "make_strategy",
    "OptimizationOutcome",
    "run_optimization",
]
