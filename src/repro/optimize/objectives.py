"""Objectives and candidate evaluation for design-space exploration.

An :class:`Objective` names one axis of the multi-objective comparison the
paper runs across PDN topologies -- energy efficiency, performance, BOM cost,
board area, IccMax, or trace-driven power/energy -- together with its
optimisation direction.  A :class:`CandidateEvaluator` turns a batch of
:class:`~repro.optimize.space.DesignPoint` candidates into one record of
objective values each, dispatching every underlying model evaluation through
the existing memo-cached engines:

* static operating points (the ``etee`` and ``performance`` objectives) go
  through :meth:`PdnSpot.evaluate_units`,
* scenario traces (the ``power`` and ``energy`` objectives) go through
  :meth:`SimEngine.evaluate_units`,
* the closed-form cost models (``bom``/``area``/``iccmax``) are computed
  directly -- they are orders of magnitude cheaper than a model evaluation.

Because both engines implement the
:class:`~repro.analysis.executor.EvaluationEngine` protocol, a batch accepts
the same ``executor=``/``jobs=`` arguments as every other grid workload:
candidates are deduplicated, sharded, evaluated in parallel, merged back into
the shared memo caches, and the objective records are bit-identical to a
serial evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.executor import ExecutorLike
from repro.analysis.pdnspot import PdnSpot
from repro.analysis.resultset import Record
from repro.analysis.study import OverrideKey
from repro.cache import DiskCache, DiskCacheLike
from repro.cost.board_area import BoardAreaModel
from repro.cost.bom import BomModel
from repro.cost.iccmax import total_iccmax_a
from repro.optimize.space import DesignPoint
from repro.pdn.base import OperatingConditions, PdnEvaluation, conditions_key
from repro.pdn.registry import build_pdn
from repro.perf.model import PerformanceModel
from repro.power.domains import WorkloadType
from repro.power.parameters import PdnTechnologyParameters
from repro.sim.study import SimEngine, SimPoint
from repro.util.errors import ConfigurationError
from repro.workloads.base import Benchmark
from repro.workloads.scenarios import DEFAULT_SEED
from repro.workloads.spec_cpu2006 import SPEC_CPU2006_BENCHMARKS

#: Optimisation directions an :class:`Objective` may declare.
MINIMIZE = "min"
MAXIMIZE = "max"


@dataclass(frozen=True)
class Objective:
    """One axis of the multi-objective comparison.

    Attributes
    ----------
    name:
        Registry name (what ``--objectives`` accepts).
    column:
        Result-set column the objective's values land in.
    direction:
        ``"min"`` or ``"max"``.
    description:
        One-line summary shown by the CLI and the docs.
    """

    name: str
    column: str
    direction: str
    description: str = ""

    def __post_init__(self) -> None:
        """Reject unknown optimisation directions fail-fast."""
        if self.direction not in (MINIMIZE, MAXIMIZE):
            raise ConfigurationError(
                f"objective {self.name!r} direction must be "
                f"{MINIMIZE!r} or {MAXIMIZE!r}, got {self.direction!r}"
            )

    @property
    def maximize(self) -> bool:
        """Whether larger values are better."""
        return self.direction == MAXIMIZE

    def oriented(self, value: float) -> float:
        """The value with sign flipped so that *larger is always better*."""
        return value if self.maximize else -value


#: Registry of the built-in objectives, keyed by ``--objectives`` name.
OBJECTIVES: Dict[str, Objective] = {
    objective.name: objective
    for objective in (
        Objective(
            "etee", "etee", MAXIMIZE,
            "mean end-to-end efficiency over the TDP set (PdnSpot)",
        ),
        Objective(
            "performance", "performance", MAXIMIZE,
            "mean suite-average performance vs the nominal baseline PDN "
            "(perf model)",
        ),
        Objective(
            "power", "average_power_w", MINIMIZE,
            "mean scenario average power over the scenario x TDP set (SimEngine)",
        ),
        Objective(
            "energy", "total_energy_j", MINIMIZE,
            "mean scenario energy over the scenario x TDP set (SimEngine)",
        ),
        Objective(
            "bom", "bom_cost", MINIMIZE,
            "mean BOM cost over the TDP set (cost model, arbitrary units)",
        ),
        Objective(
            "area", "board_area_mm2", MINIMIZE,
            "mean board area over the TDP set (area model, mm^2)",
        ),
        Objective(
            "iccmax", "iccmax_total_a", MINIMIZE,
            "mean total off-chip Iccmax over the TDP set (headroom driver)",
        ),
    )
}

#: The default objective set: the four axes of the paper's design conclusion.
DEFAULT_OBJECTIVES: Tuple[str, ...] = ("etee", "performance", "bom", "area")

#: Objectives whose values come from the trace-driven simulation engine.
_SIM_OBJECTIVES = frozenset({"power", "energy"})


def resolve_objectives(
    names: Optional[Sequence[str]] = None,
) -> Tuple[Objective, ...]:
    """Resolve objective names (default set when ``None``) to instances."""
    selected = tuple(names) if names else DEFAULT_OBJECTIVES
    objectives: List[Objective] = []
    seen: set = set()
    for name in selected:
        if name not in OBJECTIVES:
            raise ConfigurationError(
                f"unknown objective {name!r}; available: "
                f"{', '.join(sorted(OBJECTIVES))}"
            )
        if name in seen:
            raise ConfigurationError(f"objective {name!r} selected twice")
        seen.add(name)
        objectives.append(OBJECTIVES[name])
    if not objectives:
        raise ConfigurationError("at least one objective is required")
    return tuple(objectives)


@dataclass(frozen=True)
class EvaluationSettings:
    """Operating conditions candidate designs are judged under.

    These are *conditions*, not search axes: every candidate is evaluated
    under the same settings, and objective values aggregate (arithmetic mean)
    over the TDP set -- and, for the simulation objectives, over the
    ``scenarios`` set -- so one candidate gets one scalar per objective.
    """

    tdps_w: Tuple[float, ...] = (4.0, 18.0, 50.0)
    application_ratio: float = 0.56
    workload_type: WorkloadType = WorkloadType.CPU_MULTI_THREAD
    benchmarks: Tuple[Benchmark, ...] = tuple(SPEC_CPU2006_BENCHMARKS)
    scenarios: Tuple[str, ...] = ("bursty-interactive",)
    seed: int = DEFAULT_SEED
    baseline_pdn: str = "IVR"

    def __post_init__(self) -> None:
        """Validate the aggregation sets fail-fast."""
        if not self.tdps_w:
            raise ConfigurationError("evaluation settings need at least one TDP")
        if not self.benchmarks:
            raise ConfigurationError(
                "evaluation settings need at least one benchmark"
            )
        if not self.scenarios:
            raise ConfigurationError(
                "evaluation settings need at least one scenario"
            )


def _mean(values: Sequence[float]) -> float:
    """Arithmetic mean in input order (deterministic summation)."""
    return sum(values) / len(values)


class CandidateEvaluator:
    """Evaluates design-point batches into objective records.

    Parameters
    ----------
    objectives:
        The objectives to compute (resolved :class:`Objective` instances).
    settings:
        Operating conditions shared by every candidate.
    parameters:
        Base technology parameters; candidate overrides stack on top.
    enable_cache:
        Forwarded to the owned engines; disabling reproduces the cold
        (seed-equivalent) evaluation cost for the benchmark harness.
    spot:
        Optional pre-built analytic engine to share a cache with.
    cache_dir:
        Optional persistent cache *directory* (see :mod:`repro.cache`),
        attached to the owned engines as their disk tier.  A directory path
        only -- the evaluator owns two engines with different namespaces,
        so a single pre-built :class:`~repro.cache.DiskCache` instance
        cannot serve both and is rejected at construction.  With a prebuilt
        ``spot`` it applies to the simulation engine only -- the spot's own
        disk tier is the spot builder's decision.
    """

    def __init__(
        self,
        objectives: Sequence[Objective],
        settings: Optional[EvaluationSettings] = None,
        parameters: Optional[PdnTechnologyParameters] = None,
        enable_cache: bool = True,
        spot: Optional[PdnSpot] = None,
        cache_dir: DiskCacheLike = None,
    ):
        self.objectives = tuple(objectives)
        if not self.objectives:
            raise ConfigurationError("a candidate evaluator needs objectives")
        self.settings = settings if settings is not None else EvaluationSettings()
        if spot is not None and parameters is not None:
            raise ConfigurationError(
                "pass either a prebuilt spot or parameters, not both"
            )
        if isinstance(cache_dir, DiskCache):
            # One store cannot serve both owned engines (distinct
            # namespaces); failing here beats a mid-search bind conflict
            # when a sim-backed objective lazily builds the SimEngine.
            raise ConfigurationError(
                "cache_dir must be a directory path, not a DiskCache "
                "instance; the evaluator binds one store per owned engine"
            )
        self._spot = (
            spot
            if spot is not None
            else PdnSpot(
                parameters=parameters,
                enable_cache=enable_cache,
                disk_cache=cache_dir,
            )
        )
        self._sim_engine: Optional[SimEngine] = None
        self._enable_cache = enable_cache
        self._cache_dir = cache_dir
        self._bom_model = BomModel()
        self._area_model = BoardAreaModel()
        #: Variant PDN instances for the cost models, keyed by
        #: (pdn name, overrides); model state, independent of enable_cache.
        self._cost_variants: Dict[Tuple[str, OverrideKey], object] = {}
        #: The performance yardstick, built lazily: a dedicated baseline
        #: instance (distinct from the engine's own, so the evaluator hook
        #: can tell baseline lookups from candidate lookups by identity).
        self._baseline_reference: Optional[object] = None

    @property
    def spot(self) -> PdnSpot:
        """The analytic engine (and shared memo cache) behind the batches."""
        return self._spot

    @property
    def sim_engine(self) -> SimEngine:
        """The trace-simulation engine, built on first use."""
        if self._sim_engine is None:
            self._sim_engine = SimEngine(
                parameters=self._spot.parameters,
                enable_cache=self._enable_cache,
                disk_cache=self._cache_dir,
            )
        return self._sim_engine

    @property
    def needs_simulation(self) -> bool:
        """Whether any selected objective requires the simulation engine."""
        return any(obj.name in _SIM_OBJECTIVES for obj in self.objectives)

    # ------------------------------------------------------------------ #
    # Batch evaluation
    # ------------------------------------------------------------------ #
    def evaluate_batch(
        self,
        points: Sequence[DesignPoint],
        executor: ExecutorLike = None,
        jobs: Optional[int] = None,
    ) -> List[Record]:
        """Objective records for ``points``, in input order.

        Every static operating point and every scenario simulation the batch
        needs is assembled into one unit list per engine and dispatched as a
        single (parallelisable, deduplicated, memo-cached) call; the
        objective arithmetic afterwards is pure Python, so a parallel batch
        is bit-identical to a serial one.
        """
        points = list(points)
        if not points:
            return []
        for point in points:
            self._spot.pdn(point.pdn)  # fail fast on unknown topologies
        selected = {objective.name for objective in self.objectives}
        analytic = self._analytic_values(points, selected, executor, jobs)
        simulated = self._sim_values(points, selected, executor, jobs)
        records: List[Record] = []
        for index, point in enumerate(points):
            record: Record = dict(point.record_fields())
            for objective in self.objectives:
                if objective.name in _SIM_OBJECTIVES:
                    record[objective.column] = simulated[index][objective.name]
                elif objective.name in ("etee", "performance"):
                    record[objective.column] = analytic[index][objective.name]
                else:
                    record[objective.column] = self._cost_value(
                        point, objective.name
                    )
            records.append(record)
        return records

    # ------------------------------------------------------------------ #
    # Analytic objectives (PdnSpot units)
    # ------------------------------------------------------------------ #
    def _analytic_values(
        self,
        points: Sequence[DesignPoint],
        selected: set,
        executor: ExecutorLike,
        jobs: Optional[int],
    ) -> List[Dict[str, float]]:
        """Per-point ``etee``/``performance`` values (empty dicts if unused)."""
        wants_etee = "etee" in selected
        wants_perf = "performance" in selected
        if not (wants_etee or wants_perf):
            return [{} for _ in points]
        settings = self.settings
        units: List[Tuple[str, OperatingConditions, OverrideKey]] = []
        if wants_etee:
            for point in points:
                for tdp_w in settings.tdps_w:
                    conditions = OperatingConditions.for_active_workload(
                        tdp_w, settings.application_ratio, settings.workload_type
                    )
                    units.append((point.pdn, conditions, point.overrides))
        if wants_perf:
            for point in points:
                for benchmark in settings.benchmarks:
                    for tdp_w in settings.tdps_w:
                        conditions = OperatingConditions.for_active_workload(
                            tdp_w, benchmark.application_ratio, benchmark.workload_type
                        )
                        units.append((point.pdn, conditions, point.overrides))
            # The yardstick is the *nominal* baseline (no overrides): every
            # candidate is normalised against the same fixed reference
            # design, so performance scores are comparable across candidates
            # -- a candidate's overrides must not degrade its own baseline.
            # One unit per (benchmark, TDP) suffices for the whole batch.
            for benchmark in settings.benchmarks:
                for tdp_w in settings.tdps_w:
                    conditions = OperatingConditions.for_active_workload(
                        tdp_w, benchmark.application_ratio, benchmark.workload_type
                    )
                    units.append((settings.baseline_pdn, conditions, ()))
        evaluations = self._spot.evaluate_units(units, executor=executor, jobs=jobs)
        lookup: Dict[Tuple[object, ...], PdnEvaluation] = {}
        for unit, evaluation in zip(units, evaluations):
            name, conditions, overrides = unit
            lookup[(name, conditions_key(conditions), overrides)] = evaluation
        values: List[Dict[str, float]] = []
        for point in points:
            record: Dict[str, float] = {}
            if wants_etee:
                record["etee"] = _mean(
                    [
                        lookup[
                            (
                                point.pdn,
                                conditions_key(
                                    OperatingConditions.for_active_workload(
                                        tdp_w,
                                        settings.application_ratio,
                                        settings.workload_type,
                                    )
                                ),
                                point.overrides,
                            )
                        ].etee
                        for tdp_w in settings.tdps_w
                    ]
                )
            if wants_perf:
                record["performance"] = self._performance_score(point, lookup)
            values.append(record)
        return values

    def _baseline_yardstick(self) -> object:
        """The fixed nominal-baseline instance performance is scored against.

        A dedicated instance (not the engine's own) so the evaluator hook can
        distinguish baseline lookups from candidate lookups by identity even
        when a candidate uses the baseline topology itself.
        """
        if self._baseline_reference is None:
            self._baseline_reference = build_pdn(
                self.settings.baseline_pdn, self._spot.parameters
            )
        return self._baseline_reference

    def _performance_score(
        self,
        point: DesignPoint,
        lookup: Dict[Tuple[object, ...], PdnEvaluation],
    ) -> float:
        """Mean suite-average relative performance over the TDP set.

        Reuses :class:`~repro.perf.model.PerformanceModel` with an evaluator
        hook that serves the pre-batched evaluations, so the budget-split and
        frequency-sensitivity arithmetic stays in one place.  Baseline
        lookups resolve with *no* overrides -- the fixed yardstick -- while
        candidate lookups carry the point's overrides.
        """
        settings = self.settings
        yardstick = self._baseline_yardstick()

        def serve(pdn: object, conditions: OperatingConditions) -> PdnEvaluation:
            """Serve one pre-batched evaluation to the performance model."""
            overrides = () if pdn is yardstick else point.overrides
            return lookup[(pdn.name, conditions_key(conditions), overrides)]

        model = PerformanceModel(yardstick, evaluator=serve)
        candidate = self._spot.pdn(point.pdn)
        return _mean(
            [
                model.average_relative_performance(
                    candidate, settings.benchmarks, tdp_w
                )
                for tdp_w in settings.tdps_w
            ]
        )

    # ------------------------------------------------------------------ #
    # Simulation objectives (SimEngine units)
    # ------------------------------------------------------------------ #
    def _sim_values(
        self,
        points: Sequence[DesignPoint],
        selected: set,
        executor: ExecutorLike,
        jobs: Optional[int],
    ) -> List[Dict[str, float]]:
        """Per-point ``power``/``energy`` values (empty dicts if unused)."""
        if not (selected & _SIM_OBJECTIVES):
            return [{} for _ in points]
        settings = self.settings
        units: List[Tuple[str, SimPoint, OverrideKey]] = []
        for point in points:
            for scenario in settings.scenarios:
                for tdp_w in settings.tdps_w:
                    sim_point = SimPoint(
                        scenario=scenario, tdp_w=tdp_w, seed=settings.seed
                    )
                    units.append((point.pdn, sim_point, point.overrides))
        results = self.sim_engine.evaluate_units(units, executor=executor, jobs=jobs)
        per_point = len(settings.scenarios) * len(settings.tdps_w)
        values: List[Dict[str, float]] = []
        for index in range(len(points)):
            window = results[index * per_point : (index + 1) * per_point]
            values.append(
                {
                    "power": _mean([result.average_power_w for result in window]),
                    "energy": _mean([result.total_energy_j for result in window]),
                }
            )
        return values

    # ------------------------------------------------------------------ #
    # Closed-form cost objectives
    # ------------------------------------------------------------------ #
    def _variant(self, point: DesignPoint) -> object:
        """The candidate's PDN instance for the cost models (built once)."""
        key = (point.pdn, point.overrides)
        variant = self._cost_variants.get(key)
        if variant is None:
            if point.overrides:
                parameters = self._spot.parameters.with_overrides(
                    **dict(point.overrides)
                )
                variant = build_pdn(point.pdn, parameters)
            else:
                variant = self._spot.pdn(point.pdn)
            self._cost_variants[key] = variant
        return variant

    def _cost_value(self, point: DesignPoint, objective_name: str) -> float:
        """One closed-form objective value, averaged over the TDP set."""
        pdn = self._variant(point)
        tdps_w = self.settings.tdps_w
        if objective_name == "bom":
            return _mean(
                [self._bom_model.estimate(pdn, tdp_w).total_cost for tdp_w in tdps_w]
            )
        if objective_name == "area":
            return _mean(
                [
                    self._area_model.estimate(pdn, tdp_w).total_area_mm2
                    for tdp_w in tdps_w
                ]
            )
        if objective_name == "iccmax":
            return _mean([total_iccmax_a(pdn, tdp_w) for tdp_w in tdps_w])
        raise ConfigurationError(
            f"objective {objective_name!r} has no cost-model evaluator"
        )  # pragma: no cover - registry and dispatch are kept in sync
