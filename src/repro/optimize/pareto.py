"""Pareto analysis over :class:`~repro.analysis.resultset.ResultSet` tables.

The design-space search produces one result-set row per candidate with one
column per objective; this module extracts the multi-objective structure the
paper's conclusion rests on:

* :func:`dominates` -- the Pareto dominance relation between two rows,
* :func:`pareto_front` -- the non-dominated subset of a result set,
* :func:`scalarize` -- weighted scalarisation into a single ``score`` column
  (min-max normalised per objective, oriented so larger is better),
* :func:`knee_point` -- the balanced pick on the front: the candidate closest
  to the per-objective ideal after normalisation,
* :func:`annotate` -- the result set with ``pareto``/``knee`` marker columns
  for table display and JSON/CSV export.

All functions are pure and deterministic: ties break towards the earlier row,
normalisation treats a zero-range objective (every candidate equal) as
contributing nothing, and the front is invariant under permutations of the
objective order.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.resultset import MISSING, Record, ResultSet
from repro.optimize.objectives import Objective
from repro.util.errors import ConfigurationError


def _oriented_values(
    resultset: ResultSet, objectives: Sequence[Objective]
) -> List[Tuple[float, ...]]:
    """Per-row objective vectors, sign-flipped so larger is always better."""
    if not objectives:
        raise ConfigurationError("pareto analysis needs at least one objective")
    columns = {}
    for objective in objectives:
        if objective.column not in resultset.columns:
            raise ConfigurationError(
                f"objective column {objective.column!r} not in result set; "
                f"available: {', '.join(resultset.columns)}"
            )
        columns[objective.column] = resultset.column(objective.column)
    vectors: List[Tuple[float, ...]] = []
    for index in range(len(resultset)):
        vector = []
        for objective in objectives:
            cell = columns[objective.column][index]
            if cell is MISSING or not isinstance(cell, (int, float)):
                raise ConfigurationError(
                    f"row {index} has no numeric {objective.column!r} value; "
                    "cannot rank it"
                )
            value = float(cell)
            if value != value:
                # NaN compares false against everything, so it would slip
                # through the dominance scan as spuriously Pareto-optimal
                # and poison the knee normalisation -- reject it instead,
                # mirroring ResultSet.normalize_to.
                raise ConfigurationError(
                    f"row {index} has a NaN {objective.column!r} value; "
                    "cannot rank it"
                )
            vector.append(objective.oriented(value))
        vectors.append(tuple(vector))
    return vectors


def _vector_dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether oriented vector ``a`` Pareto-dominates ``b``."""
    return all(x >= y for x, y in zip(a, b)) and any(
        x > y for x, y in zip(a, b)
    )


def dominates(
    candidate: Record, other: Record, objectives: Sequence[Objective]
) -> bool:
    """Whether ``candidate`` Pareto-dominates ``other``.

    ``candidate`` dominates when it is at least as good on every objective
    and strictly better on at least one.  The relation is irreflexive and
    asymmetric; equal rows dominate in neither direction.
    """
    if not objectives:
        raise ConfigurationError("dominance needs at least one objective")

    def vector(record: Record) -> Tuple[float, ...]:
        """One record's oriented objective vector."""
        values = []
        for objective in objectives:
            if objective.column not in record:
                raise ConfigurationError(
                    f"record has no {objective.column!r} value; cannot rank it"
                )
            value = float(record[objective.column])
            if value != value:
                # NaN compares false in both directions, which would make
                # the relation silently vacuous -- same guard as the
                # resultset-level functions.
                raise ConfigurationError(
                    f"record has a NaN {objective.column!r} value; "
                    "cannot rank it"
                )
            values.append(objective.oriented(value))
        return tuple(values)

    return _vector_dominates(vector(candidate), vector(other))


def _front_of(vectors: Sequence[Tuple[float, ...]]) -> List[int]:
    """Indices of the non-dominated oriented vectors, in input order."""
    front: List[int] = []
    for index, vector in enumerate(vectors):
        if not any(
            _vector_dominates(other, vector)
            for position, other in enumerate(vectors)
            if position != index
        ):
            front.append(index)
    return front


def pareto_indices(
    resultset: ResultSet, objectives: Sequence[Objective]
) -> List[int]:
    """Row indices of the Pareto-optimal candidates, in row order.

    A row is kept when no other row dominates it.  Duplicate objective
    vectors are all kept (they dominate each other in neither direction), so
    the front is a subset of the input rows and does not depend on the order
    the objectives are listed in.
    """
    return _front_of(_oriented_values(resultset, objectives))


def pareto_front(
    resultset: ResultSet, objectives: Sequence[Objective]
) -> ResultSet:
    """The non-dominated subset of ``resultset`` (row order preserved)."""
    keep = set(pareto_indices(resultset, objectives))
    columns = {
        name: [
            cell
            for index, cell in enumerate(resultset.column(name))
            if index in keep
        ]
        for name in resultset.columns
    }
    return ResultSet(columns, name=resultset.name)


def _normalised_deficits(
    vectors: Sequence[Tuple[float, ...]]
) -> List[Tuple[float, ...]]:
    """Per-row, per-objective distance from the best candidate, in [0, 1].

    Each oriented objective is min-max normalised over the candidate set; a
    zero-range objective (every candidate equal, e.g. a zero-area axis whose
    values coincide) contributes a deficit of zero for every row rather than
    dividing by zero.
    """
    dimensions = len(vectors[0])
    best = [max(vector[axis] for vector in vectors) for axis in range(dimensions)]
    worst = [min(vector[axis] for vector in vectors) for axis in range(dimensions)]
    deficits: List[Tuple[float, ...]] = []
    for vector in vectors:
        row = []
        for axis in range(dimensions):
            span = best[axis] - worst[axis]
            row.append((best[axis] - vector[axis]) / span if span > 0.0 else 0.0)
        deficits.append(tuple(row))
    return deficits


def scalarize(
    resultset: ResultSet,
    objectives: Sequence[Objective],
    weights: Optional[Mapping[str, float]] = None,
    column: str = "score",
) -> ResultSet:
    """Append a weighted scalarisation column (larger is better).

    Each objective is min-max normalised over the candidate set and oriented
    so 1.0 is the best candidate and 0.0 the worst; the score is the
    weighted average of the normalised values.  ``weights`` maps objective
    *names* to non-negative weights (missing names default to 1.0); at least
    one selected objective must have a positive weight.
    """
    weights = dict(weights) if weights else {}
    unknown = set(weights) - {objective.name for objective in objectives}
    if unknown:
        raise ConfigurationError(
            f"weights name objectives not selected: {', '.join(sorted(unknown))}"
        )
    factors = [weights.get(objective.name, 1.0) for objective in objectives]
    if any(factor < 0.0 for factor in factors):
        raise ConfigurationError("objective weights must be non-negative")
    total = sum(factors)
    if total <= 0.0:
        raise ConfigurationError("at least one objective weight must be positive")
    if not resultset:
        raise ConfigurationError("cannot scalarize an empty result set")
    vectors = _oriented_values(resultset, objectives)
    deficits = _normalised_deficits(vectors)
    scores = [
        sum(factor * (1.0 - deficit) for factor, deficit in zip(factors, row))
        / total
        for row in deficits
    ]
    columns: Dict[str, List[object]] = {
        name: resultset.column(name) for name in resultset.columns
    }
    columns[column] = scores
    return ResultSet(columns, name=resultset.name)


def _knee_of(vectors: Sequence[Tuple[float, ...]], front: Sequence[int]) -> int:
    """The front index closest to the ideal point over normalised deficits."""
    deficits = _normalised_deficits(vectors)
    return min(
        front,
        key=lambda index: (
            math.sqrt(sum(value * value for value in deficits[index])),
            index,
        ),
    )


def knee_point(
    resultset: ResultSet, objectives: Sequence[Objective]
) -> int:
    """Row index of the knee point: the balanced pick on the Pareto front.

    The knee is the front member closest (Euclidean distance over the
    min-max-normalised objective deficits) to the *ideal point* -- the
    imaginary candidate best on every objective at once.  Normalisation
    spans the whole candidate set, so the pick reflects the trade-off range
    the search actually explored; ties break towards the earlier row.
    """
    if not resultset:
        raise ConfigurationError(
            "cannot pick a knee point of an empty result set"
        )
    vectors = _oriented_values(resultset, objectives)
    return _knee_of(vectors, _front_of(vectors))


def annotate(
    resultset: ResultSet,
    objectives: Sequence[Objective],
    pareto_column: str = "pareto",
    knee_column: str = "knee",
) -> ResultSet:
    """The result set with boolean Pareto-front and knee-point markers.

    The annotated set serialises through the regular
    :meth:`~repro.analysis.resultset.ResultSet.to_json` /
    :meth:`~repro.analysis.resultset.ResultSet.to_csv` writers, which is how
    the CLI exports search outcomes.  The dominance scan runs once and both
    markers derive from it.
    """
    if not resultset:
        raise ConfigurationError("cannot annotate an empty result set")
    vectors = _oriented_values(resultset, objectives)
    front = set(_front_of(vectors))
    knee = _knee_of(vectors, sorted(front))
    columns: Dict[str, List[object]] = {
        name: resultset.column(name) for name in resultset.columns
    }
    columns[pareto_column] = [index in front for index in range(len(resultset))]
    columns[knee_column] = [index == knee for index in range(len(resultset))]
    return ResultSet(columns, name=resultset.name)
