"""Design-space specification for PDN design-space exploration.

A :class:`DesignSpace` describes the set of candidate PDN designs a search
strategy may explore: a *topology* axis (which PDN architectures compete) and
any number of *parameter* axes (technology-parameter overrides modelling
component sizing -- tolerance bands, load-line impedances, regulator
efficiencies, ...), optionally restricted by *constraints* (predicates over
candidate points).  A :class:`DesignPoint` is one candidate: a PDN topology
plus a frozen parameter-override set, picklable and hashable so candidate
evaluations can ride the memo-cached
:class:`~repro.analysis.executor.EvaluationEngine` backends unchanged.

Spaces are built either through the fluent :class:`DesignSpaceBuilder`
(``DesignSpace.builder()``) or the :meth:`DesignSpace.over_pdns` convenience
constructor.  Point enumeration order is deterministic -- parameter-override
combinations in axis declaration order, then topology -- which is what makes
exhaustive and seeded searches reproducible.

Example
-------
>>> from repro.optimize import DesignSpace
>>> space = (
...     DesignSpace.builder("tob-sizing")
...     .pdns("IVR", "FlexWatts")
...     .parameter("ivr_tolerance_band_v", 0.015, 0.020, 0.025)
...     .build()
... )
>>> len(space.points())
6
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.resultset import Record
from repro.analysis.study import OverrideKey, _flatten
from repro.pdn.registry import available_pdns
from repro.power.parameters import PdnTechnologyParameters
from repro.util.errors import ConfigurationError

#: A candidate-point constraint: keep the point when the predicate is true.
Constraint = Callable[["DesignPoint"], bool]


@dataclass(frozen=True)
class DesignPoint:
    """One candidate design: a PDN topology plus parameter overrides.

    Attributes
    ----------
    pdn:
        Name of the PDN architecture (``"IVR"``, ``"FlexWatts"``, ...).
    overrides:
        Technology-parameter overrides as a sorted, hashable tuple of
        ``(field name, value)`` pairs -- the same :data:`OverrideKey` shape
        the Study and Sim engines memo-cache on.
    """

    pdn: str
    overrides: OverrideKey = ()

    def __post_init__(self) -> None:
        """Reject empty names and normalise the overrides to sorted order.

        Sorting here (rather than trusting the caller) keeps equal designs
        equal: an externally constructed point with the same overrides in a
        different order must hash and compare identically, or memo-cache
        keys and strategy dedup sets would silently diverge.
        """
        if not self.pdn:
            raise ConfigurationError("a design point needs a PDN name")
        normalised = tuple(sorted(self.overrides, key=lambda pair: pair[0]))
        if normalised != self.overrides:
            object.__setattr__(self, "overrides", normalised)

    def record_fields(self) -> Record:
        """The point's identifying record fields (sweep-layout convention)."""
        fields: Record = {"pdn": self.pdn}
        if self.overrides:
            fields["parameters"] = dict(self.overrides)
        return fields

    def label(self) -> str:
        """A compact human-readable label (used by tables and logs)."""
        if not self.overrides:
            return self.pdn
        parts = ", ".join(f"{name}={value!r}" for name, value in self.overrides)
        return f"{self.pdn}({parts})"


@dataclass(frozen=True)
class DesignSpace:
    """The searchable space of candidate PDN designs.

    Attributes
    ----------
    name:
        Label carried into produced result sets.
    pdn_names:
        The topology axis (candidate PDN architectures), in order.
    parameter_axes:
        Ordered ``(field name, candidate values)`` pairs; every combination
        of one value per axis forms a parameter-override set.
    constraints:
        Predicates over :class:`DesignPoint`; points failing any constraint
        are excluded from :meth:`points` (and hence from every search).
    """

    name: str = "design-space"
    pdn_names: Tuple[str, ...] = ()
    parameter_axes: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()
    constraints: Tuple[Constraint, ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        """Validate the axes fail-fast (empty axes make the space empty)."""
        if not self.name:
            raise ConfigurationError("a design space needs a non-empty name")
        if not self.pdn_names:
            raise ConfigurationError(
                f"design space {self.name!r} has no PDN topology axis"
            )
        known_fields = {
            parameter.name
            for parameter in dataclasses.fields(PdnTechnologyParameters)
        }
        seen: set = set()
        for axis_name, values in self.parameter_axes:
            if axis_name in seen:
                raise ConfigurationError(
                    f"design space {self.name!r} declares parameter axis "
                    f"{axis_name!r} twice"
                )
            seen.add(axis_name)
            if axis_name not in known_fields:
                raise ConfigurationError(
                    f"parameter axis {axis_name!r} is not a technology "
                    f"parameter; available: {', '.join(sorted(known_fields))}"
                )
            if not values:
                raise ConfigurationError(
                    f"parameter axis {axis_name!r} of design space "
                    f"{self.name!r} has no values"
                )

    @staticmethod
    def builder(name: str = "design-space") -> "DesignSpaceBuilder":
        """Start a fluent :class:`DesignSpaceBuilder`."""
        return DesignSpaceBuilder(name)

    @classmethod
    def over_pdns(
        cls,
        pdn_names: Optional[Sequence[str]] = None,
        name: str = "pdn-topologies",
    ) -> "DesignSpace":
        """A topology-only space (every registered PDN by default)."""
        names = tuple(pdn_names) if pdn_names is not None else tuple(available_pdns())
        return cls(name=name, pdn_names=names)

    @property
    def grid_size(self) -> int:
        """Number of grid combinations before constraint filtering."""
        size = len(self.pdn_names)
        for _, values in self.parameter_axes:
            size *= len(values)
        return size

    def points(self) -> Tuple[DesignPoint, ...]:
        """Every admissible candidate point, in deterministic grid order.

        Parameter-override combinations iterate in axis declaration order
        (outer axes vary slowest), then the topology axis -- mirroring the
        override-then-scenario nesting of the Study builders -- and
        constraint-violating points are dropped.
        """
        axis_names = [axis_name for axis_name, _ in self.parameter_axes]
        axis_values = [values for _, values in self.parameter_axes]
        points: List[DesignPoint] = []
        for combination in itertools.product(*axis_values):
            overrides: OverrideKey = tuple(
                sorted(zip(axis_names, combination))
            )
            for pdn_name in self.pdn_names:
                point = DesignPoint(pdn=pdn_name, overrides=overrides)
                if all(constraint(point) for constraint in self.constraints):
                    points.append(point)
        if not points:
            raise ConfigurationError(
                f"design space {self.name!r} has no admissible points "
                "(constraints excluded the whole grid)"
            )
        return tuple(points)


class DesignSpaceBuilder:
    """Fluent builder of :class:`DesignSpace` instances.

    Example
    -------
    >>> space = (
    ...     DesignSpace.builder("hybrid-vs-baselines")
    ...     .pdns("IVR", "MBVR", "LDO", "FlexWatts")
    ...     .parameter("flexwatts_loadline_scale", 1.05, 1.12)
    ...     .constraint(lambda point: point.pdn != "LDO" or not point.overrides)
    ...     .build()
    ... )
    """

    def __init__(self, name: str = "design-space"):
        self._name = name
        self._pdn_names: List[str] = []
        self._parameter_axes: List[Tuple[str, Tuple[object, ...]]] = []
        self._constraints: List[Constraint] = []

    def pdns(self, *names: Union[str, Sequence[str]]) -> "DesignSpaceBuilder":
        """Add PDN architectures to the topology axis."""
        self._pdn_names.extend(str(name) for name in _flatten(names))
        return self

    def parameter(
        self, axis_name: str, *values: Union[object, Sequence[object]]
    ) -> "DesignSpaceBuilder":
        """Add a technology-parameter axis (component-sizing candidates).

        ``axis_name`` must be a field of
        :class:`~repro.power.parameters.PdnTechnologyParameters`; it is
        applied through ``with_overrides`` by the evaluating engines.
        """
        self._parameter_axes.append((axis_name, tuple(_flatten(values))))
        return self

    def constraint(self, predicate: Constraint) -> "DesignSpaceBuilder":
        """Restrict the space to points satisfying ``predicate``."""
        self._constraints.append(predicate)
        return self

    def build(self) -> DesignSpace:
        """Materialise the axes into an immutable :class:`DesignSpace`."""
        names = self._pdn_names or available_pdns()
        return DesignSpace(
            name=self._name,
            pdn_names=tuple(names),
            parameter_axes=tuple(self._parameter_axes),
            constraints=tuple(self._constraints),
        )


def freeze_parameter_overrides(
    overrides: Dict[str, object]
) -> OverrideKey:
    """Normalise a parameter-override mapping to the hashable key shape."""
    return tuple(sorted(overrides.items()))
