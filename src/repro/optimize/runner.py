"""The design-space exploration entry point.

:func:`run_optimization` ties the subsystem together: it resolves the
objectives and the search strategy, drives the strategy over a
:class:`~repro.optimize.space.DesignSpace` with a batch evaluator backed by
the memo-cached engines, and assembles an :class:`OptimizationOutcome` --
the evaluated candidates as an annotated
:class:`~repro.analysis.resultset.ResultSet`, the Pareto front, and the
knee-point pick.

Example
-------
>>> from repro.optimize import DesignSpace, run_optimization
>>> outcome = run_optimization(DesignSpace.over_pdns(["IVR", "FlexWatts"]))
>>> "FlexWatts" in outcome.front.unique("pdn")
True
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.analysis.executor import ExecutorLike
from repro.analysis.resultset import Record, ResultSet
from repro.obs import trace as obs_trace
from repro.obs.runstats import RunStats, executor_label
from repro.optimize.objectives import (
    CandidateEvaluator,
    EvaluationSettings,
    Objective,
    resolve_objectives,
)
from repro.optimize.pareto import annotate
from repro.optimize.space import DesignPoint, DesignSpace
from repro.optimize.strategies import Evaluated, make_strategy
from repro.power.parameters import PdnTechnologyParameters
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class OptimizationOutcome:
    """Everything a design-space search produced.

    Attributes
    ----------
    results:
        One row per evaluated candidate, in evaluation order, with the
        objective columns plus boolean ``pareto``/``knee`` markers; ready
        for JSON/CSV export through the regular result-set writers.
    front:
        The Pareto-optimal subset of ``results`` (markers included).
    knee:
        The knee-point row: the balanced pick on the front.
    objectives:
        The resolved objectives, in selection order.
    strategy:
        Registry name of the strategy that ran.
    run_stats:
        Advisory :class:`~repro.obs.runstats.RunStats` of the search --
        candidates evaluated, wall time, and the evaluator engine's
        memory-cache hit/miss delta.  Excluded from equality so outcomes
        compare by what the search produced, not how fast it ran.
    """

    results: ResultSet
    front: ResultSet
    knee: Record
    objectives: Tuple[Objective, ...]
    strategy: str
    run_stats: Optional[RunStats] = field(default=None, compare=False)

    @property
    def knee_pdn(self) -> str:
        """Topology of the knee-point candidate (the recommended design)."""
        return str(self.knee["pdn"])


def run_optimization(
    space: DesignSpace,
    objectives: Optional[Sequence[str]] = None,
    strategy: object = None,
    budget: Optional[int] = None,
    seed: Optional[int] = None,
    settings: Optional[EvaluationSettings] = None,
    parameters: Optional[PdnTechnologyParameters] = None,
    evaluator: Optional[CandidateEvaluator] = None,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[object] = None,
) -> OptimizationOutcome:
    """Search ``space`` against multiple objectives and rank the outcome.

    Parameters
    ----------
    space:
        The candidate designs (topology x parameter axes, constrained).
    objectives:
        Objective names (see :data:`~repro.optimize.objectives.OBJECTIVES`);
        default :data:`~repro.optimize.objectives.DEFAULT_OBJECTIVES`.
    strategy:
        ``None`` / ``"grid"`` (exhaustive), ``"random"`` or
        ``"evolutionary"``, or a pre-built strategy instance.
    budget:
        Candidate budget for the sampling strategies (grid cap optional).
    seed:
        RNG seed of the sampling strategies (default 0); a fixed seed makes
        the whole search -- including a parallel one -- reproducible.  Must
        be left unset with a pre-built strategy instance.
    settings:
        Operating conditions (TDP set, benchmarks, scenarios, baseline).
    parameters:
        Base technology parameters for a fresh evaluator.
    evaluator:
        Optional pre-built :class:`CandidateEvaluator` (shares caches across
        searches); mutually exclusive with ``settings``/``parameters``.
    executor / jobs:
        Parallel backend forwarded to every candidate batch; results are
        bit-identical to the serial search.
    cache_dir:
        Optional persistent cache directory (see :mod:`repro.cache`)
        attached to the fresh evaluator's engines; a warm directory serves
        repeated candidate evaluations from disk across processes.
        Mutually exclusive with a prebuilt ``evaluator``.
    """
    resolved = resolve_objectives(objectives)
    if evaluator is not None:
        if settings is not None or parameters is not None:
            raise ConfigurationError(
                "pass either a prebuilt evaluator or settings/parameters, not both"
            )
        if cache_dir is not None:
            raise ConfigurationError(
                "pass either a prebuilt evaluator or cache_dir; attach the "
                "disk cache when building the evaluator instead"
            )
        if tuple(evaluator.objectives) != resolved:
            raise ConfigurationError(
                "the prebuilt evaluator computes different objectives than "
                "the ones selected"
            )
    else:
        evaluator = CandidateEvaluator(
            resolved, settings=settings, parameters=parameters, cache_dir=cache_dir
        )
    search = make_strategy(strategy, budget=budget, seed=seed)

    def evaluate(points: Sequence[DesignPoint]) -> List[Record]:
        """The strategy-facing batch hook (parallelism injected here)."""
        return evaluator.evaluate_batch(points, executor=executor, jobs=jobs)

    started = time.perf_counter()
    before = evaluator.spot.cache_info()
    with obs_trace.span(
        "optimize.search", category="optimize",
        strategy=search.name, space=space.name,
    ) as search_span:
        evaluated: List[Evaluated] = search.search(space, evaluate, resolved)
        search_span.set("candidates", len(evaluated))
    if not evaluated:
        raise ConfigurationError(
            f"strategy {search.name!r} evaluated no candidates of "
            f"space {space.name!r}"
        )
    after = evaluator.spot.cache_info()
    run_stats = RunStats(
        units=len(evaluated),
        duration_s=time.perf_counter() - started,
        cache_hits=after.hits - before.hits,
        cache_misses=after.misses - before.misses,
        executor=executor_label(executor),
    )
    results = ResultSet.from_records(
        [record for _, record in evaluated], name=space.name
    )
    # One dominance scan: annotate() computes both markers, and the front
    # and knee row are read back from the marker columns in linear time.
    annotated = annotate(results, resolved)
    front = annotated.filter(pareto=True)
    knee = annotated.row(annotated.column("knee").index(True))
    return OptimizationOutcome(
        results=annotated,
        front=front,
        knee=knee,
        objectives=resolved,
        strategy=search.name,
        run_stats=run_stats,
    )
