"""Pluggable search strategies for design-space exploration.

Every strategy implements the :class:`SearchStrategy` protocol: given a
:class:`~repro.optimize.space.DesignSpace` and a batch evaluator, it decides
*which* candidates to evaluate and in what order, and returns the evaluated
``(point, record)`` pairs.  The strategies never evaluate anything themselves
-- candidate batches go through
:meth:`~repro.optimize.objectives.CandidateEvaluator.evaluate_batch`, which
dispatches to the memo-cached engines -- so every strategy inherits the
executor parallelism and the bit-identical parallel-vs-serial guarantee.

Three built-ins cover the classic trade-offs:

:class:`GridSearch`
    Exhaustive enumeration in deterministic grid order (optionally truncated
    to a budget).  The reference strategy: every other search is a subset.
:class:`RandomSearch`
    Seeded uniform sampling without replacement.  Sub-linear coverage of
    large parameter grids; the same seed always draws the same candidates.
:class:`EvolutionarySearch`
    Seeded evolutionary refinement with successive halving: each generation
    keeps the top half of the population by scalarised score, mutates the
    survivors along random axes, and stops when the budget is exhausted or
    the space has no unseen neighbours left.  Because selection depends only
    on the (deterministic) objective records and the seeded RNG, the search
    trajectory is reproducible and backend-independent.
"""

from __future__ import annotations

import random
from typing import (
    Callable,
    ClassVar,
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from repro.analysis.resultset import Record, ResultSet
from repro.optimize.objectives import Objective
from repro.optimize.pareto import scalarize
from repro.optimize.space import DesignPoint, DesignSpace
from repro.util.errors import ConfigurationError

#: Evaluates a candidate batch into one objective record per point.
BatchEvaluator = Callable[[Sequence[DesignPoint]], List[Record]]

#: One evaluated candidate: the point and its objective record.
Evaluated = Tuple[DesignPoint, Record]

#: Default candidate budget of the sampling strategies.
DEFAULT_BUDGET = 16


class SearchStrategy(Protocol):
    """What a search strategy must provide to drive an exploration."""

    #: Registry name of the strategy (``grid``/``random``/``evolutionary``).
    name: ClassVar[str]

    def search(
        self,
        space: DesignSpace,
        evaluate: BatchEvaluator,
        objectives: Sequence[Objective],
    ) -> List[Evaluated]:
        """Explore ``space`` and return the evaluated candidates, in order."""
        ...  # pragma: no cover - protocol


def _validated_budget(budget: Optional[int]) -> Optional[int]:
    """Reject non-positive explicit budgets fail-fast."""
    if budget is not None and budget < 1:
        raise ConfigurationError(f"search budget must be positive, got {budget}")
    return budget


class GridSearch:
    """Exhaustive enumeration of the design space.

    Parameters
    ----------
    budget:
        Optional cap; the first ``budget`` points of the deterministic grid
        order are evaluated.  ``None`` (the default) evaluates everything.
    """

    name: ClassVar[str] = "grid"

    def __init__(self, budget: Optional[int] = None):
        self._budget = _validated_budget(budget)

    def search(
        self,
        space: DesignSpace,
        evaluate: BatchEvaluator,
        objectives: Sequence[Objective],
    ) -> List[Evaluated]:
        """Evaluate the whole grid (or its first ``budget`` points)."""
        points = list(space.points())
        if self._budget is not None:
            points = points[: self._budget]
        return list(zip(points, evaluate(points)))


class RandomSearch:
    """Seeded uniform sampling of the design space without replacement.

    Parameters
    ----------
    budget:
        Number of candidates to draw (the whole space when it is smaller).
    seed:
        RNG seed; the same seed draws the same candidates in the same order.
    """

    name: ClassVar[str] = "random"

    def __init__(self, budget: Optional[int] = None, seed: int = 0):
        self._budget = _validated_budget(budget) or DEFAULT_BUDGET
        self._seed = seed

    def search(
        self,
        space: DesignSpace,
        evaluate: BatchEvaluator,
        objectives: Sequence[Objective],
    ) -> List[Evaluated]:
        """Draw and evaluate the seeded sample as one batch."""
        points = list(space.points())
        rng = random.Random(self._seed)
        count = min(self._budget, len(points))
        sample = [points[index] for index in rng.sample(range(len(points)), count)]
        return list(zip(sample, evaluate(sample)))


class EvolutionarySearch:
    """Seeded evolutionary refinement with successive halving.

    Each generation evaluates the unseen members of the population as one
    batch, ranks the population by equal-weight scalarised score (min-max
    normalised over everything seen so far), keeps the top half, and refills
    by mutating survivors along randomly chosen axes.  The search stops when
    the candidate budget is exhausted or no unseen mutation can be produced.

    Parameters
    ----------
    budget:
        Maximum number of distinct candidates to evaluate.
    seed:
        RNG seed for the initial population and the mutations.
    population:
        Generation size (halved by selection, refilled by mutation).
    """

    name: ClassVar[str] = "evolutionary"

    def __init__(
        self,
        budget: Optional[int] = None,
        seed: int = 0,
        population: int = 8,
    ):
        self._budget = _validated_budget(budget) or DEFAULT_BUDGET
        if population < 2:
            raise ConfigurationError(
                f"evolutionary population must be at least 2, got {population}"
            )
        self._seed = seed
        self._population = population

    def search(
        self,
        space: DesignSpace,
        evaluate: BatchEvaluator,
        objectives: Sequence[Objective],
    ) -> List[Evaluated]:
        """Run the generational loop until the budget is exhausted."""
        points = list(space.points())
        order: Dict[DesignPoint, int] = {
            point: index for index, point in enumerate(points)
        }
        rng = random.Random(self._seed)
        population = [
            points[index]
            for index in rng.sample(
                range(len(points)), min(self._population, len(points))
            )
        ]
        seen: Dict[DesignPoint, Record] = {}
        evaluated: List[Evaluated] = []
        while True:
            fresh = [point for point in population if point not in seen]
            fresh = fresh[: self._budget - len(seen)]
            if fresh:
                for point, record in zip(fresh, evaluate(fresh)):
                    seen[point] = record
                    evaluated.append((point, record))
            if len(seen) >= min(self._budget, len(points)):
                break
            survivors = self._select(population, seen, objectives, order)
            children = self._mutate(survivors, space, seen, rng, order)
            if not children:
                break
            population = survivors + children
        return evaluated

    def _select(
        self,
        population: Sequence[DesignPoint],
        seen: Dict[DesignPoint, Record],
        objectives: Sequence[Objective],
        order: Dict[DesignPoint, int],
    ) -> List[DesignPoint]:
        """Successive halving: the top half of the population by score."""
        scores = _scalarised_scores(seen, objectives)
        ranked = sorted(
            population, key=lambda point: (-scores[point], order[point])
        )
        return ranked[: max(1, len(ranked) // 2)]

    def _mutate(
        self,
        survivors: Sequence[DesignPoint],
        space: DesignSpace,
        seen: Dict[DesignPoint, Record],
        rng: random.Random,
        order: Dict[DesignPoint, int],
    ) -> List[DesignPoint]:
        """Refill the population with unseen single-axis mutations.

        Random mutation drives the exploration; when the random attempts run
        dry (large axes with few unseen values left), a deterministic scan
        of every survivor's neighbourhood fills the remainder, so the search
        only stops short of its budget when the survivors truly have no
        unseen admissible neighbours -- as the class docstring promises.
        """
        children: List[DesignPoint] = []
        produced = set()
        wanted = self._population - len(survivors)
        attempts = 0
        while len(children) < wanted and attempts < 8 * self._population:
            attempts += 1
            parent = survivors[rng.randrange(len(survivors))]
            child = self._mutant(parent, space, rng)
            if child is None or child in seen or child in produced:
                continue
            if child not in order:
                continue  # constraint-filtered neighbours are inadmissible
            produced.add(child)
            children.append(child)
        if len(children) < wanted:
            for parent in survivors:
                for child in self._neighbours(parent, space):
                    if child in seen or child in produced or child not in order:
                        continue
                    produced.add(child)
                    children.append(child)
                    if len(children) >= wanted:
                        return children
        return children

    @staticmethod
    def _neighbours(
        parent: DesignPoint, space: DesignSpace
    ) -> Iterator[DesignPoint]:
        """Every single-axis mutation of ``parent``, in deterministic order."""
        for name in space.pdn_names:
            if name != parent.pdn:
                yield DesignPoint(pdn=name, overrides=parent.overrides)
        current = dict(parent.overrides)
        for axis_name, values in space.parameter_axes:
            for value in values:
                if value == current.get(axis_name):
                    continue
                mutated = dict(current)
                mutated[axis_name] = value
                yield DesignPoint(
                    pdn=parent.pdn, overrides=tuple(sorted(mutated.items()))
                )

    @staticmethod
    def _mutant(
        parent: DesignPoint, space: DesignSpace, rng: random.Random
    ) -> Optional[DesignPoint]:
        """One single-axis mutation of ``parent`` (topology or a parameter)."""
        axes = len(space.parameter_axes) + 1
        choice = rng.randrange(axes)
        if choice == 0:
            alternatives = [name for name in space.pdn_names if name != parent.pdn]
            if not alternatives:
                return None
            return DesignPoint(
                pdn=alternatives[rng.randrange(len(alternatives))],
                overrides=parent.overrides,
            )
        axis_name, values = space.parameter_axes[choice - 1]
        current = dict(parent.overrides)
        alternatives = [value for value in values if value != current.get(axis_name)]
        if not alternatives:
            return None
        current[axis_name] = alternatives[rng.randrange(len(alternatives))]
        return DesignPoint(pdn=parent.pdn, overrides=tuple(sorted(current.items())))


def _scalarised_scores(
    seen: Dict[DesignPoint, Record], objectives: Sequence[Objective]
) -> Dict[DesignPoint, float]:
    """Equal-weight scalarisation over every record seen so far.

    Delegates to :func:`repro.optimize.pareto.scalarize`, so the selection
    pressure of the evolutionary strategy and the documented ``scalarize``
    semantics can never diverge.
    """
    resultset = ResultSet.from_records([seen[point] for point in seen])
    scores = scalarize(resultset, objectives).column("score")
    return dict(zip(seen, scores))


#: Registry of the built-in strategies, keyed by their CLI name.
STRATEGIES: Dict[str, Callable[..., SearchStrategy]] = {
    GridSearch.name: GridSearch,
    RandomSearch.name: RandomSearch,
    EvolutionarySearch.name: EvolutionarySearch,
}


def make_strategy(
    strategy: object = None,
    budget: Optional[int] = None,
    seed: Optional[int] = None,
) -> SearchStrategy:
    """Resolve a ``strategy=`` argument into a strategy instance.

    ``None`` selects :class:`GridSearch`; a string is looked up in
    :data:`STRATEGIES` and constructed with ``budget`` (and ``seed`` for the
    sampling strategies, default 0 -- the exhaustive grid draws nothing, so
    it takes no seed and ``seed`` does not affect it); an existing strategy
    instance passes through unchanged -- ``budget`` and ``seed`` must then
    be left unset, so a caller-supplied value is never silently ignored.
    """
    if strategy is None:
        return GridSearch(budget=budget)
    if isinstance(strategy, str):
        if strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown strategy {strategy!r}; choose from: "
                f"{', '.join(sorted(STRATEGIES))}"
            )
        if strategy == GridSearch.name:
            return GridSearch(budget=budget)
        return STRATEGIES[strategy](
            budget=budget, seed=seed if seed is not None else 0
        )
    if isinstance(strategy, (GridSearch, RandomSearch, EvolutionarySearch)) or (
        hasattr(strategy, "search") and hasattr(strategy, "name")
    ):
        if budget is not None:
            raise ConfigurationError(
                "budget conflicts with a pre-built strategy instance; "
                "configure the strategy's budget directly"
            )
        if seed is not None:
            raise ConfigurationError(
                "seed conflicts with a pre-built strategy instance; "
                "configure the strategy's seed directly"
            )
        return strategy  # type: ignore[return-value]
    raise ConfigurationError(
        f"strategy must be None, a name, or a SearchStrategy, "
        f"got {type(strategy).__name__}"
    )
